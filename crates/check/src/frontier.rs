//! Graph-mode exploration: fingerprinted, symmetry-reduced, parallel BFS
//! over the reachable-state graph.
//!
//! The legacy enumerator ([`crate::dfs::explore`]) walks the schedule
//! *tree*: `2^d` full runs for a `d`-bit tape, re-executing every prefix
//! and re-visiting the many schedules that lead to identical global
//! states (round agreement collapses differences fast, so most of the
//! tree is redundant). This module walks the reachable-state *graph*
//! instead, TLC-style:
//!
//! * a **node** is a canonical [`NodeState`](crate::fingerprint::NodeState)
//!   — exactly the future-determining part of a global state, normalized
//!   (counters shifted to min 0) and canonicalized over process
//!   relabelings fixing the faulty process;
//! * an **edge** is one round under one omission mask (`2·(n−1)` bits,
//!   one per copy eligible for omission), executed through the
//!   [`SyncStepper`](ftss::sync_sim::SyncStepper) seam — one simulator
//!   round per edge, never a replayed prefix;
//! * a **visited set** of 128-bit fingerprints prunes revisits, so each
//!   orbit of each reachable state is expanded exactly once.
//!
//! Theorem 3's Definition-2.4 obligations are decomposed into per-edge
//! atoms (see [`check_edge`]'s docs and DESIGN.md §14 for the derivation
//! and soundness argument) and checked on **every** edge before dedup, so
//! pruning never hides a violation. The Theorem-4 stabilization-time
//! property gets the same treatment: each [`NodeState`] carries a
//! two-bit liveness summary of the current stable window's witnesses
//! (`thm4_alive`), updated per edge from parent-side facts only, and the
//! `stabilization` atom fires exactly when the legacy whole-history
//! oracle ([`crate::oracle::thm4_decided`]) would — once the window has
//! outlived the bound with every admissible offset dead. Because normalized counters take at
//! most `n^n` values (each counter is always some initial value plus the
//! round count) the graph is finite, and with `rounds: None` the
//! exploration runs to a **fixpoint**: termination without a violation
//! certifies the obligations over *unbounded* horizons — something no
//! bounded tape enumeration can do.
//!
//! Each BFS layer is sharded across workers with
//! [`ftss_sweep::map_cells`] and merged in canonical (fingerprint, mask)
//! order; reports are byte-identical for every `--jobs`, like every other
//! subsystem. A violating edge is replayed concretely: the search path's
//! masks are mapped back through the accumulated canonicalization
//! permutations into an honest omission tape, confirmed against the
//! legacy oracle ([`crate::dfs::check_tape`]) and shrunk to a 1-minimal
//! [`Counterexample`] — graph-mode schedule files replay through the same
//! pipeline as enumerated ones.

use crate::dfs::{check_tape, check_tape_thm4, Counterexample, DfsConfig};
use crate::fingerprint::{
    compose_perm, identity_perm, mask_full, Fingerprinter, NodeState, Perm, MAX_GRAPH_N,
};
use crate::runbuild::RunBuilder;
use crate::shrink::shrink_with;
use ftss::core::{ProcessId, RoundCounter};
use ftss::protocols::{RoundAgreement, RoundAgreementState};
use ftss::sync_sim::SyncStepper;
use std::collections::HashMap;

/// Configuration of a graph exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphConfig {
    /// Number of processes (`2..=6` — symmetry and mask width both cap
    /// here, see [`MAX_GRAPH_N`]).
    pub n: usize,
    /// Seed of the initial systemic failure, as in [`DfsConfig`].
    pub corruption_seed: u64,
    /// The single faulty process omissions act through.
    pub faulty: ProcessId,
    /// Stabilization time for the Theorem-3 obligations (1 = the
    /// theorem's claim, 0 = deliberately broken).
    pub stabilization: usize,
    /// `Some(d)`: explore `d` BFS layers (equivalent to enumerating every
    /// `d`-round schedule). `None`: run to the fixpoint — unbounded
    /// horizon.
    pub rounds: Option<usize>,
    /// Worker shards per layer. Reports are byte-identical for any value.
    pub jobs: usize,
    /// Hard ceiling on visited states (memory guard; exceeding it is an
    /// error, not a silent truncation).
    pub max_states: usize,
}

impl GraphConfig {
    /// The pinned acceptance configuration: `n = 3`, the same shape as
    /// [`DfsConfig::small`] (2 rounds ≙ tape bound 8).
    pub fn small(corruption_seed: u64) -> Self {
        GraphConfig {
            n: 3,
            corruption_seed,
            faulty: ProcessId(0),
            stabilization: 1,
            rounds: Some(2),
            jobs: 1,
            max_states: 2_000_000,
        }
    }

    /// A fixpoint exploration at size `n` (unbounded horizon).
    pub fn fixpoint(n: usize, corruption_seed: u64) -> Self {
        GraphConfig {
            n,
            corruption_seed,
            faulty: ProcessId(0),
            stabilization: 1,
            rounds: None,
            jobs: 1,
            max_states: 2_000_000,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if !(2..=MAX_GRAPH_N).contains(&self.n) {
            return Err(format!(
                "check --graph: n must be in 2..={MAX_GRAPH_N}, got {}",
                self.n
            ));
        }
        if self.faulty.index() >= self.n {
            return Err(format!(
                "check --graph: faulty process {} outside 0..{}",
                self.faulty, self.n
            ));
        }
        if self.rounds == Some(0) {
            return Err("check --graph: rounds must be at least 1".into());
        }
        if self.jobs == 0 {
            return Err("check --graph: jobs must be at least 1".into());
        }
        Ok(())
    }

    /// Omission-mask width per round: one bit per eligible copy.
    fn mask_bits(&self) -> u32 {
        2 * (self.n as u32 - 1)
    }

    /// The legacy [`DfsConfig`] that replays a `depth`-round witness of
    /// this exploration (tape bound sized to the full tape, which
    /// [`check_tape`] accepts unbounded).
    fn replay_config(&self, depth: usize, tape_len: usize) -> DfsConfig {
        DfsConfig {
            n: self.n,
            rounds: depth,
            corruption_seed: self.corruption_seed,
            faulty: self.faulty,
            tape_bound: tape_len,
            stabilization: self.stabilization,
        }
    }
}

/// A violating edge, replayed into the legacy pipeline: the concrete
/// [`DfsConfig`] and 1-minimal tape that reproduce it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphCounterexample {
    /// Replay configuration (`rounds` = depth of the violating edge).
    pub cfg: DfsConfig,
    /// The shrunk concrete witness.
    pub counterexample: Counterexample,
}

/// What a graph exploration covered. Deterministic: equal configurations
/// yield equal reports, for any `jobs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphReport {
    /// Canonical states visited (root included).
    pub visited: u64,
    /// Edges expanded — each is ONE simulator round, the unit comparable
    /// to `legacy schedules × rounds`.
    pub expansions: u64,
    /// Edges whose child was already visited (revisits pruned).
    pub dedup_hits: u64,
    /// Edges whose child needed a non-identity permutation to reach its
    /// orbit representative (states collapsed by symmetry).
    pub orbit_hits: u64,
    /// BFS layers fully expanded.
    pub depth: u32,
    /// Whether the exploration closed (no unexpanded states remain).
    pub fixpoint: bool,
    /// First violating edge in canonical order, if any.
    pub counterexample: Option<GraphCounterexample>,
}

/// Per-node bookkeeping: the canonical state plus the search-tree edge
/// that first reached it (for witness reconstruction).
struct Visited {
    state: NodeState,
    /// Fingerprint of the parent node (`None` for the root).
    parent: Option<u128>,
    /// Omission mask of the entering edge, in the parent's canonical
    /// process labels.
    mask: u32,
    /// Canonicalization permutation of the entering edge: raw child
    /// labels → canonical child labels.
    perm: Perm,
}

/// One explored edge, before merging.
struct Expansion {
    mask: u32,
    child: NodeState,
    child_fp: u128,
    perm: Perm,
    nontrivial_orbit: bool,
    violation: Option<&'static str>,
}

/// The eligible copies of one round in consultation order (sender-major,
/// destination-minor, pairs touching `faulty` only) — the bit layout of
/// both omission masks and legacy tape segments.
fn eligible_pairs(n: usize, faulty: ProcessId) -> Vec<(ProcessId, ProcessId)> {
    let f = faulty.index();
    let mut out = Vec::with_capacity(2 * (n - 1));
    for i in 0..n {
        for j in 0..n {
            if i != j && (i == f || j == f) {
                out.push((ProcessId(i), ProcessId(j)));
            }
        }
    }
    out
}

/// Evaluates the per-edge Theorem-3 obligation atoms for the transition
/// `parent --mask--> child` and returns the first violated rule.
///
/// Every Definition-2.4 obligation `Σ(H[m..e], F(prefix e))` decomposes
/// into per-round **agreement** atoms and per-round-pair **rate** atoms,
/// and a violated atom inside some obligation implies the same atom is
/// violated in the *minimal-`e`* obligation containing it (the faulty set
/// grows with `e`, so smaller `e` checks a superset of processes). It is
/// therefore complete to check, on the edge that executes round `t`:
///
/// * **agreement at prefix `t−1`** (the parent's counters, among the
///   complement of `F(prefix t)` = the child's deviation flag), gated on
///   the atom being inside an admissible obligation: the child's stable
///   window must satisfy `stable_len(t) ≥ g+1` with `g = max(r, 1)` — or,
///   for `r = 0` only, the root-edge of the first window (the `m = 0`
///   obligation);
/// * **the rate pair `(t−2, t−1)`** (the parent's `rate_ok` bits, which
///   record whether round `t−1` advanced each counter by exactly one),
///   gated on `stable_len(t) ≥ g+2` — or, for `r = 0`, any non-root edge
///   still in the first window.
///
/// `stable_len` saturates at `g+2`, the largest gate, so saturation never
/// changes a gate's outcome.
///
/// A third, **stabilization** atom decomposes the Theorem-4 measured
/// stabilization time per edge. On the window `[a..t]`, offset `s`
/// satisfies the problem iff counters agree at every prefix
/// `a−1+s ..= t−1` and advance at rate 1 across rounds `a+s ..= t−1` —
/// all *parent-side* facts, so one boolean per faulty-set variant
/// suffices ([`NodeState::thm4_alive`]):
///
/// ```text
/// alive' = A(t−1) ∧ ((alive ∧ R(t−1)) ∨ len(t) ≤ r+1)
/// ```
///
/// where the last disjunct admits the window's newest offset
/// `s = len−1` while it is still `≤ r`. Once `len(t) ≥ r+1` every
/// admissible offset has been introduced, and a dead witness can never
/// revive (agreement at a past prefix and the rates behind it are
/// history), so `¬alive` there is exactly the *decided* Theorem-4
/// violation of [`crate::oracle::thm4_decided`] — pinned prefix-for-
/// prefix by `thm4_atom_matches_the_legacy_oracle_on_random_chains`.
fn check_edge(
    parent: &NodeState,
    child: &NodeState,
    faulty: ProcessId,
    stabilization: usize,
) -> Option<&'static str> {
    let n = parent.n();
    let g = stabilization.max(1) as u8;
    let mut correct = mask_full(n);
    if child.deviated {
        correct &= !(1 << faulty.index());
    }

    let agreement_due = child.stable_len > g
        || (stabilization == 0 && parent.first_window && parent.stable_len == 0);
    if agreement_due {
        let mut seen: Option<u64> = None;
        for j in 0..n {
            if correct & (1 << j) == 0 {
                continue;
            }
            match seen {
                None => seen = Some(parent.counters[j]),
                Some(c) if c != parent.counters[j] => return Some("agreement"),
                _ => {}
            }
        }
    }

    let rate_due = child.stable_len >= g + 2
        || (stabilization == 0 && child.first_window && parent.stable_len >= 1);
    if rate_due && parent.rate_ok & correct != correct {
        return Some("rate");
    }

    // Theorem-4 stabilization time, decided: the current window has
    // outlived the bound and no admissible offset survives. Which
    // `thm4_alive` bit applies follows the child's deviation flag — the
    // same faulty-set choice the whole-history oracle makes via
    // `faulty_upto`.
    let alive = if child.deviated {
        child.thm4_alive & 2 != 0
    } else {
        child.thm4_alive & 1 != 0
    };
    if child.stable_len as usize > stabilization && !alive {
        return Some("stabilization");
    }

    None
}

/// Expands one canonical node: executes all `2^(2(n−1))` one-round
/// omission masks through the stepper seam, computing for each the child
/// state, its orbit representative and the edge's obligation atoms.
fn expand(
    parent: &NodeState,
    cfg: &GraphConfig,
    pairs: &[(ProcessId, ProcessId)],
    fper: &Fingerprinter,
) -> Vec<Expansion> {
    let n = cfg.n;
    let f = cfg.faulty.index();
    let g = cfg.stabilization.max(1) as u8;
    let cap = g + 2;
    let masks = 1u32 << cfg.mask_bits();
    let mut out = Vec::with_capacity(masks as usize);
    let mut scratch = Vec::new();
    // (sender, dest) → eligible-pair bit index, for the hot mask loop.
    let mut pair_idx = vec![usize::MAX; n * n];
    for (idx, &(s, d)) in pairs.iter().enumerate() {
        pair_idx[s.index() * n + d.index()] = idx;
    }

    let base_states: Vec<RoundAgreementState> = parent
        .counters
        .iter()
        .map(|&c| RoundAgreementState {
            c: RoundCounter::new(c),
        })
        .collect();

    // Mask-independent parent-side facts for the Theorem-4 liveness
    // update (see `check_edge`'s docs): agreement of the parent's
    // counters and coverage of its rate bits, per faulty-set variant
    // (bit 0: faulty counted correct, bit 1: counted faulty).
    let corr = mask_full(n) & !(1 << f);
    let agrees = |set: u32| {
        let mut seen: Option<u64> = None;
        for (j, &c) in parent.counters.iter().enumerate() {
            if set & (1 << j) == 0 {
                continue;
            }
            match seen {
                None => seen = Some(c),
                Some(s) if s != c => return false,
                _ => {}
            }
        }
        true
    };
    let a_full = agrees(mask_full(n));
    let a_corr = agrees(corr);
    let r_full = parent.rate_ok & mask_full(n) == mask_full(n);
    let r_corr = parent.rate_ok & corr == corr;

    for mask in 0..masks {
        // One simulator round through the stepper seam — the protocol's
        // real step function, not a reimplementation.
        let mut stepper = SyncStepper::new(RoundAgreement, base_states.clone());
        stepper.step_round(|from, to| {
            let (i, j) = (from.index(), to.index());
            if i != f && j != f {
                return true; // copies between correct processes never drop
            }
            mask & (1 << pair_idx[i * n + j]) == 0
        });

        // Counters, normalized; rate bits against the parent.
        let mut counters: Vec<u64> = (0..n).map(|p| stepper.states()[p].c.get()).collect();
        let mut rate_ok = 0u32;
        for (j, (&c, &pc)) in counters.iter().zip(&parent.counters).enumerate() {
            if c == pc.saturating_add(1) {
                rate_ok |= 1 << j;
            }
        }
        let min = *counters.iter().min().expect("n >= 2");
        for c in &mut counters {
            *c -= min;
        }

        // Causal reach: delivered copies this round are all pairs except
        // the mask-dropped eligible ones (self-copies always land).
        let mut reach = parent.reach.clone();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let dropped = (i == f || j == f) && mask & (1 << pair_idx[i * n + j]) != 0;
                if !dropped {
                    reach[j] |= parent.reach[i] | (1 << i);
                }
            }
        }

        let deviated = parent.deviated || mask != 0;
        let mut correct = mask_full(n);
        if deviated {
            correct &= !(1 << f);
        }
        let mut coterie = mask_full(n);
        for (q, &r) in reach.iter().enumerate() {
            if correct & (1 << q) != 0 {
                coterie &= r;
            }
        }

        let same_window = parent.stable_len > 0 && coterie == parent.coterie;
        let stable_len = if same_window {
            (parent.stable_len + 1).min(cap)
        } else {
            1
        };
        let first_window = parent.first_window && (parent.stable_len == 0 || same_window);

        // alive' = A(t−1) ∧ ((alive ∧ R(t−1)) ∨ len(t) ≤ r+1), per
        // variant. On a window-start edge the carried witness is void
        // (the window has no prior offsets), so only the candidate term
        // survives. `stable_len` saturates at `g+2 > r+1`, so the
        // comparison is exact.
        let cand = (stable_len as usize) <= cfg.stabilization + 1;
        let keep_full = same_window && parent.thm4_alive & 1 != 0 && r_full;
        let keep_corr = same_window && parent.thm4_alive & 2 != 0 && r_corr;
        let thm4_alive =
            (a_full && (keep_full || cand)) as u8 | (((a_corr && (keep_corr || cand)) as u8) << 1);

        let child = NodeState {
            counters,
            rate_ok,
            reach,
            deviated,
            coterie,
            stable_len,
            first_window,
            thm4_alive,
        };
        let violation = check_edge(parent, &child, cfg.faulty, cfg.stabilization);
        let (canon, perm) = child.canonicalize(cfg.faulty);
        let nontrivial_orbit = perm != identity_perm();
        let child_fp = fper.node(&canon, &mut scratch);
        out.push(Expansion {
            mask,
            child: canon,
            child_fp,
            perm,
            nontrivial_orbit,
            violation,
        });
    }
    out
}

/// Rebuilds a concrete omission tape for the search path ending in the
/// edge `(parent_fp, mask)`, then confirms and shrinks it through the
/// legacy pipeline.
///
/// Each stored mask is expressed in the canonical labels of its parent;
/// composing the per-edge canonicalization permutations yields, per
/// depth, the relabeling `σ` from original process ids to canonical ids.
/// The original run's tape bit for eligible copy `(u, v)` is the stored
/// mask's bit for `(σ(u), σ(v))`. The reconstructed tape is confirmed
/// against [`check_tape`] — the raw, unnormalized simulator — before
/// shrinking; a confirmation failure is reported as an error (it would
/// mean the normalized model diverged from the raw one, see DESIGN.md
/// §14's saturation caveat).
fn reconstruct_witness(
    cfg: &GraphConfig,
    visited: &HashMap<u128, Visited>,
    root_perm: &Perm,
    parent_fp: u128,
    mask: u32,
    detail_hint: &str,
) -> Result<GraphCounterexample, String> {
    let pairs = eligible_pairs(cfg.n, cfg.faulty);

    // Masks along the path, root-first, ending with the violating edge.
    let mut masks: Vec<u32> = vec![mask];
    let mut perms: Vec<Perm> = Vec::new(); // per-edge child canonicalization
    let mut cursor = parent_fp;
    loop {
        let entry = &visited[&cursor];
        match entry.parent {
            Some(p) => {
                masks.push(entry.mask);
                perms.push(entry.perm);
                cursor = p;
            }
            None => break,
        }
    }
    masks.reverse();
    perms.reverse();

    // σ maps original labels to the canonical labels of the node the
    // next mask is expressed in; starts as the root's canonicalization.
    let mut sigma = *root_perm;
    let mut tape = Vec::with_capacity(masks.len() * pairs.len());
    for (k, m) in masks.iter().enumerate() {
        for &(u, v) in &pairs {
            let cu = ProcessId(sigma[u.index()] as usize);
            let cv = ProcessId(sigma[v.index()] as usize);
            let idx = pairs
                .iter()
                .position(|&(s, d)| s == cu && d == cv)
                .expect("permutations fixing the faulty map eligible pairs to eligible pairs");
            tape.push(m & (1 << idx) != 0);
        }
        if k < perms.len() {
            sigma = compose_perm(&perms[k], &sigma);
        }
    }

    let replay_cfg = cfg.replay_config(masks.len(), tape.len());
    // Theorem-3 atoms confirm and shrink against the plain legacy oracle,
    // byte-identical to before. A `stabilization` atom can violate
    // Theorem 4 without violating Theorem 3 (a window can die quietly,
    // outside any due obligation), so those edges confirm against the
    // union of both oracles.
    let oracle = |c: &DfsConfig, t: &[bool]| {
        let thm3 = check_tape(c, t);
        if detail_hint == "stabilization" {
            thm3.or_else(|| check_tape_thm4(c, t))
        } else {
            thm3
        }
    };
    if oracle(&replay_cfg, &tape).is_none() {
        return Err(format!(
            "graph witness failed legacy confirmation (depth {}, atom {detail_hint}): \
             normalized model diverged from the raw simulator",
            masks.len()
        ));
    }
    let counterexample = shrink_with(&replay_cfg, &tape, oracle);
    Ok(GraphCounterexample {
        cfg: replay_cfg,
        counterexample,
    })
}

/// Explores the reachable-state graph of `cfg`. See the module docs.
///
/// Layers are expanded breadth-first; a layer containing a violating
/// edge is still *completed* (so all counts are deterministic), then the
/// first violating edge in canonical (fingerprint, mask) order is
/// reconstructed, confirmed and shrunk.
pub fn explore_graph(cfg: &GraphConfig) -> Result<GraphReport, String> {
    cfg.validate()?;
    let fper = Fingerprinter::new();
    let pairs = eligible_pairs(cfg.n, cfg.faulty);

    // Root: the corrupted initial state through the shared builder (one
    // round is the minimum RunConfig; only the initial states are used).
    let stepper = RunBuilder::corrupted(cfg.n, 1, cfg.corruption_seed).stepper();
    let raw_counters: Vec<u64> = (0..cfg.n).map(|p| stepper.states()[p].c.get()).collect();
    let root_raw = NodeState::root(&raw_counters, cfg.stabilization);
    let (root, root_perm) = root_raw.canonicalize(cfg.faulty);
    let mut scratch = Vec::new();
    let root_fp = fper.node(&root, &mut scratch);

    let mut visited: HashMap<u128, Visited> = HashMap::new();
    visited.insert(
        root_fp,
        Visited {
            state: root,
            parent: None,
            mask: 0,
            perm: identity_perm(),
        },
    );

    let mut layer: Vec<u128> = vec![root_fp];
    let mut report = GraphReport {
        visited: 1,
        expansions: 0,
        dedup_hits: 0,
        orbit_hits: 0,
        depth: 0,
        fixpoint: false,
        counterexample: None,
    };

    loop {
        if let Some(d) = cfg.rounds {
            if report.depth as usize >= d {
                report.fixpoint = false;
                break;
            }
        }
        if layer.is_empty() {
            report.fixpoint = true;
            break;
        }

        // Shard the layer across workers; map_cells returns results in
        // cell order, so the merge below is jobs-invariant.
        let expanded: Vec<Vec<Expansion>> = ftss_sweep::map_cells(&layer, cfg.jobs, |fp| {
            expand(&visited[fp].state, cfg, &pairs, &fper)
        });

        let depth = report.depth + 1;
        let mut next: Vec<u128> = Vec::new();
        let mut violating: Option<(u128, u32, &'static str)> = None;
        for (fp, exps) in layer.iter().zip(&expanded) {
            for e in exps {
                report.expansions += 1;
                if e.nontrivial_orbit {
                    report.orbit_hits += 1;
                }
                // Obligation atoms are edge properties: record the first
                // violation in canonical order even on deduped edges.
                if violating.is_none() {
                    if let Some(rule) = e.violation {
                        violating = Some((*fp, e.mask, rule));
                    }
                }
                if visited.contains_key(&e.child_fp) {
                    report.dedup_hits += 1;
                    continue;
                }
                visited.insert(
                    e.child_fp,
                    Visited {
                        state: e.child.clone(),
                        parent: Some(*fp),
                        mask: e.mask,
                        perm: e.perm,
                    },
                );
                report.visited += 1;
                next.push(e.child_fp);
            }
        }
        report.depth = depth;

        if let Some((parent_fp, mask, rule)) = violating {
            report.counterexample = Some(reconstruct_witness(
                cfg, &visited, &root_perm, parent_fp, mask, rule,
            )?);
            break;
        }
        if report.visited as usize > cfg.max_states {
            return Err(format!(
                "check --graph: state ceiling exceeded ({} visited > max-states {})",
                report.visited, cfg.max_states
            ));
        }
        // Canonical layer order: sorted fingerprints.
        next.sort_unstable();
        layer = next;
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::explore;
    use crate::oracle::thm3_round_agreement;
    use ftss_rng::Rng;

    #[test]
    fn eligible_pairs_match_the_tape_consultation_order() {
        let pairs = eligible_pairs(3, ProcessId(0));
        let want: Vec<(usize, usize)> = vec![(0, 1), (0, 2), (1, 0), (2, 0)];
        let got: Vec<(usize, usize)> = pairs.iter().map(|&(s, d)| (s.index(), d.index())).collect();
        assert_eq!(got, want);
        assert_eq!(eligible_pairs(5, ProcessId(2)).len(), 8);
    }

    /// The incremental per-edge oracle must agree with the legacy
    /// whole-history oracle on random mask chains: drive both the graph
    /// transition (no canonicalization, so states correspond 1:1) and a
    /// real runner over the same omission schedule, and compare "any
    /// violation so far" after every round.
    #[test]
    fn edge_atoms_match_the_legacy_oracle_on_random_chains() {
        ftss_rng::check::forall(60, |g| {
            let n = g.gen_range(2..5u64) as usize;
            let rounds = g.gen_range(1..5u64) as usize;
            let seed = g.next_u64();
            let stab = g.gen_range(0..2u64) as usize;
            let faulty = ProcessId(g.gen_range(0..n as u64) as usize);
            let bits = 2 * (n - 1);
            let masks: Vec<u32> = (0..rounds)
                .map(|_| (g.next_u64() & ((1 << bits) - 1)) as u32)
                .collect();

            let cfg = GraphConfig {
                n,
                corruption_seed: seed,
                faulty,
                stabilization: stab,
                rounds: Some(rounds),
                jobs: 1,
                max_states: 1 << 20,
            };
            let pairs = eligible_pairs(n, faulty);
            let fper = Fingerprinter::new();

            // Graph side: walk exactly the sampled chain, no dedup and no
            // canonicalization (identity orbit), collecting edge atoms.
            let stepper = RunBuilder::corrupted(n, 1, seed).stepper();
            let raw: Vec<u64> = (0..n).map(|p| stepper.states()[p].c.get()).collect();
            let mut node = NodeState::root(&raw, stab);
            let mut incremental: Vec<bool> = Vec::new(); // violation known after round k?
            let mut any = false;
            for &m in &masks {
                let exps = expand(&node, &cfg, &pairs, &fper);
                let e = exps
                    .into_iter()
                    .find(|e| e.mask == m)
                    .expect("mask in range");
                // Theorem-3 atoms only: the stabilization atom tracks a
                // different (non-monotone) oracle, pinned separately below.
                any = any || matches!(e.violation, Some("agreement" | "rate"));
                incremental.push(any);
                // Follow the RAW child (undo canonicalization) so the next
                // round's mask keeps its original labels.
                let inv = invert(&e.perm);
                node = e.child.permuted(&inv);
            }

            // Legacy side: one tape per prefix, full-history oracle.
            let tape: Vec<bool> = masks
                .iter()
                .flat_map(|m| (0..bits).map(move |b| m & (1 << b) != 0))
                .collect();
            for k in 1..=rounds {
                let legacy_cfg = cfg.replay_config(k, k * bits);
                let legacy = check_tape(&legacy_cfg, &tape[..k * bits]).is_some();
                assert_eq!(
                    incremental[k - 1],
                    legacy,
                    "n={n} rounds={k} stab={stab} faulty={faulty} seed={seed} masks={masks:?}"
                );
            }
        });
    }

    /// The per-edge stabilization atom must agree with the *decided*
    /// whole-history Theorem-4 oracle prefix-for-prefix — not cumulatively:
    /// `thm4_decided` is non-monotone (a decided-dead window is replaced by
    /// a fresh, open one when the coterie shifts), and the atom must track
    /// that exactly.
    #[test]
    fn thm4_atom_matches_the_legacy_oracle_on_random_chains() {
        ftss_rng::check::forall(60, |g| {
            let n = g.gen_range(2..5u64) as usize;
            let rounds = g.gen_range(1..6u64) as usize;
            let seed = g.next_u64();
            let stab = g.gen_range(0..3u64) as usize;
            let faulty = ProcessId(g.gen_range(0..n as u64) as usize);
            let bits = 2 * (n - 1);
            let masks: Vec<u32> = (0..rounds)
                .map(|_| (g.next_u64() & ((1 << bits) - 1)) as u32)
                .collect();

            let cfg = GraphConfig {
                n,
                corruption_seed: seed,
                faulty,
                stabilization: stab,
                rounds: Some(rounds),
                jobs: 1,
                max_states: 1 << 20,
            };
            let pairs = eligible_pairs(n, faulty);
            let fper = Fingerprinter::new();

            let stepper = RunBuilder::corrupted(n, 1, seed).stepper();
            let raw: Vec<u64> = (0..n).map(|p| stepper.states()[p].c.get()).collect();
            let mut node = NodeState::root(&raw, stab);
            let mut fired: Vec<bool> = Vec::new(); // atom verdict per edge
            for &m in &masks {
                let exps = expand(&node, &cfg, &pairs, &fper);
                let e = exps
                    .into_iter()
                    .find(|e| e.mask == m)
                    .expect("mask in range");
                // Evaluate the atom directly (not via `check_edge`, which
                // short-circuits on the Theorem-3 atoms). All three fields
                // are label-invariant, so the canonical child suffices.
                let alive = if e.child.deviated {
                    e.child.thm4_alive & 2 != 0
                } else {
                    e.child.thm4_alive & 1 != 0
                };
                fired.push(e.child.stable_len as usize > stab && !alive);
                let inv = invert(&e.perm);
                node = e.child.permuted(&inv);
            }

            let tape: Vec<bool> = masks
                .iter()
                .flat_map(|m| (0..bits).map(move |b| m & (1 << b) != 0))
                .collect();
            for k in 1..=rounds {
                let legacy_cfg = cfg.replay_config(k, k * bits);
                let legacy = check_tape_thm4(&legacy_cfg, &tape[..k * bits]).is_some();
                assert_eq!(
                    fired[k - 1],
                    legacy,
                    "n={n} rounds={k} stab={stab} faulty={faulty} seed={seed} masks={masks:?}"
                );
            }
        });
    }

    fn invert(p: &Perm) -> Perm {
        let mut inv = identity_perm();
        for i in 0..8 {
            inv[p[i] as usize] = i as u8;
        }
        inv
    }

    /// Graph mode must agree with the legacy enumerator verdict-for-verdict
    /// on configurations both can cover exhaustively.
    #[test]
    fn graph_matches_enumerator_verdicts() {
        for seed in [7u64, 11, 42] {
            for stab in [1usize, 0] {
                let mut dcfg = DfsConfig::small(seed);
                dcfg.stabilization = stab;
                let mut gcfg = GraphConfig::small(seed);
                gcfg.stabilization = stab;
                let legacy = explore(&dcfg).unwrap();
                let graph = explore_graph(&gcfg).unwrap();
                assert_eq!(
                    legacy.counterexample.is_some(),
                    graph.counterexample.is_some(),
                    "seed {seed} stab {stab}: graph and enumerator disagree"
                );
                if let Some(gce) = &graph.counterexample {
                    // The graph counterexample replays through the legacy
                    // oracle by construction.
                    assert_eq!(
                        check_tape(&gce.cfg, &gce.counterexample.tape),
                        Some(gce.counterexample.detail.clone())
                    );
                }
            }
        }
    }

    #[test]
    fn graph_reports_are_jobs_invariant() {
        let mut base = GraphConfig::fixpoint(4, 7);
        base.rounds = Some(3);
        let serial = explore_graph(&base).unwrap();
        for jobs in 2..=4 {
            let mut cfg = base.clone();
            cfg.jobs = jobs;
            assert_eq!(explore_graph(&cfg).unwrap(), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn fixpoint_closes_and_certifies_unbounded_horizon() {
        // n = 3 fixpoint: the graph is finite, closes without violation,
        // and dedup + orbits must both have fired.
        let report = explore_graph(&GraphConfig::fixpoint(3, 7)).unwrap();
        assert!(report.fixpoint, "exploration must close");
        assert!(report.counterexample.is_none(), "Theorem 3 holds");
        assert!(report.dedup_hits > 0, "revisits must be pruned");
        assert!(report.visited < report.expansions);
    }

    #[test]
    fn broken_oracle_yields_a_confirmed_minimal_counterexample() {
        let mut cfg = GraphConfig::small(7);
        cfg.stabilization = 0;
        let report = explore_graph(&cfg).unwrap();
        let gce = report.counterexample.expect("stab 0 must violate");
        // Seed 7's corrupted start disagrees on its own: minimal tape is
        // empty, found at depth 1 (the m = 0 obligation of Def 2.4).
        assert!(gce.counterexample.tape.is_empty());
        assert_eq!(
            check_tape(&gce.cfg, &gce.counterexample.tape),
            Some(gce.counterexample.detail.clone())
        );
    }

    /// Deep exploration past the legacy d = 20 wall: 5 rounds at n = 3 is
    /// a 60-bit tape space (2^60 schedules) — the graph walks it whole.
    #[test]
    fn graph_covers_depths_past_the_tape_bound_wall() {
        let mut cfg = GraphConfig::fixpoint(3, 9);
        cfg.rounds = Some(5);
        let report = explore_graph(&cfg).unwrap();
        // The graph may close before the requested depth — a fixpoint
        // covers every deeper round too.
        assert!(report.depth == 5 || report.fixpoint, "{report:?}");
        assert!(report.counterexample.is_none());
        // The whole 5-round reachable space in far fewer edge-expansions
        // than the enumerator's 2^20-run ceiling would even allow.
        assert!(report.expansions < 1 << 20);
    }

    #[test]
    fn validation_rejects_out_of_range_configs() {
        let mut cfg = GraphConfig::small(0);
        cfg.n = 7;
        assert!(explore_graph(&cfg).is_err());
        let mut cfg = GraphConfig::small(0);
        cfg.rounds = Some(0);
        assert!(explore_graph(&cfg).is_err());
        let mut cfg = GraphConfig::small(0);
        cfg.jobs = 0;
        assert!(explore_graph(&cfg).is_err());
        let mut cfg = GraphConfig::small(0);
        cfg.faulty = ProcessId(5);
        assert!(explore_graph(&cfg).is_err());
    }

    #[test]
    fn state_ceiling_is_enforced() {
        let mut cfg = GraphConfig::fixpoint(4, 3);
        cfg.max_states = 2;
        let err = explore_graph(&cfg).unwrap_err();
        assert!(err.contains("max-states"), "{err}");
    }

    /// End-to-end sanity at n = 5: a full fixpoint certification, which
    /// the enumerator cannot touch (eligible copies = 8/round; 3 rounds
    /// already exceed the 2^20 ceiling).
    #[test]
    fn n5_fixpoint_certifies_theorem3() {
        let report = explore_graph(&GraphConfig::fixpoint(5, 7)).unwrap();
        assert!(report.fixpoint);
        assert!(report.counterexample.is_none());
        assert!(report.orbit_hits > 0, "symmetry must collapse orbits");
    }

    /// Spot-check the incremental oracle against the whole-history oracle
    /// through a real runner on an all-deliver chain (regression anchor
    /// for the gating arithmetic).
    #[test]
    fn all_deliver_chain_is_clean_under_thm3_gates() {
        let cfg = GraphConfig::small(7);
        let report = explore_graph(&cfg).unwrap();
        assert!(report.counterexample.is_none());
        let out = RunBuilder::corrupted(3, 2, 7).run(&mut ftss::sync_sim::NoFaults);
        assert_eq!(thm3_round_agreement(&out.history, 1), None);
    }
}
