//! The adversary battery: worst-case-within-model fault scenarios for
//! systems too large to enumerate.
//!
//! Where [`crate::dfs`] proves properties by exhaustion at `n ≤ 4`, the
//! battery *probes* them at realistic sizes with hand-picked adversaries
//! aimed at each theorem's weakest point:
//!
//! * **corruption-burst** — round agreement under a coterie-changing
//!   partition followed by a fresh mid-run systemic failure: Theorem 3's
//!   one-round stabilization must hold after the *final* failure.
//! * **quorum-omission** — the compiled `Π⁺` with a seeded omission
//!   adversary degrading a faulty minority's traffic: Theorem 4's
//!   `2·final_round + 2` bound must survive continual omissions.
//! * **crash-at-worst-time** — the compiled `Π⁺` with a crash landing
//!   exactly on the iteration boundary, mid-broadcast (a partial send):
//!   the bound must survive the nastiest crash placement.
//! * **slow-coterie-async** — the ◇S detector under an
//!   [`AdversaryScheduler`] stretching every message touching a victim to
//!   the maximum admissible delay, from a fully poisoned state, with a
//!   real crash: Theorem 5's settle properties must still hold.
//!
//! Every cell is a pure function of `(scenario, n, seed)`; the battery
//! fans out over [`ftss_sweep::map_cells`], so rows are deterministic and
//! independent of the worker count — pinned by `check_determinism`.

use crate::oracle::{thm4_compiled, thm5_detector};
use ftss::analysis::measured_stabilization_time;
use ftss::async_sim::{AdversaryScheduler, AsyncConfig, AsyncRunner, Time};
use ftss::compiler::Compiled;
use ftss::core::{CrashSchedule, ProcessId, ProcessSet, RateAgreementSpec, Round};
use ftss::detectors::{LifeState, StrongDetectorProcess, SuspectProbe, WeakOracle};
use ftss::protocols::{FloodSet, RepeatedConsensusSpec, RoundAgreement};
use ftss::sync_sim::{
    CorruptionSchedule, CrashOnly, GroupPartition, RandomOmission, RunConfig, SyncRunner,
};

/// The battery's scenarios, in reporting order.
pub const SCENARIOS: [&str; 4] = [
    "corruption-burst",
    "quorum-omission",
    "crash-at-worst-time",
    "slow-coterie-async",
];

/// Battery parameters.
#[derive(Clone, Debug)]
pub struct BatteryConfig {
    /// System size (must be at least 3; the compiled scenarios tolerate
    /// `f = 1`).
    pub n: usize,
    /// Seeds per scenario (`0..seeds`).
    pub seeds: u64,
    /// Worker threads for the sweep executor.
    pub jobs: usize,
}

impl BatteryConfig {
    /// `seeds` seeds per scenario at size `n`, run on `jobs` workers.
    pub fn new(n: usize, seeds: u64, jobs: usize) -> Self {
        BatteryConfig { n, seeds, jobs }
    }
}

/// One battery verdict row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatteryRow {
    /// Scenario name (one of [`SCENARIOS`]).
    pub scenario: &'static str,
    /// The cell's seed.
    pub seed: u64,
    /// `None` = property held; `Some(detail)` = violation.
    pub verdict: Option<String>,
}

impl std::fmt::Display for BatteryRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.verdict {
            None => write!(f, "{:<20} seed={:<3} PASS", self.scenario, self.seed),
            Some(d) => write!(f, "{:<20} seed={:<3} FAIL {d}", self.scenario, self.seed),
        }
    }
}

/// Runs the whole battery. Rows come back in `(scenario, seed)` order
/// regardless of `jobs`; a panicking cell is isolated and reported
/// without aborting the rest (see `ftss_sweep::map_cells`).
pub fn run_battery(cfg: &BatteryConfig) -> Result<Vec<BatteryRow>, String> {
    if cfg.n < 3 {
        return Err(format!(
            "check --adversary: n must be at least 3, got {}",
            cfg.n
        ));
    }
    let cells: Vec<(&'static str, u64)> = SCENARIOS
        .iter()
        .flat_map(|&s| (0..cfg.seeds).map(move |seed| (s, seed)))
        .collect();
    let n = cfg.n;
    let rows = ftss_sweep::map_cells(&cells, cfg.jobs, |&(scenario, seed)| BatteryRow {
        scenario,
        seed,
        verdict: run_cell(scenario, n, seed),
    });
    Ok(rows)
}

/// Whether every row passed.
pub fn all_pass(rows: &[BatteryRow]) -> bool {
    rows.iter().all(|r| r.verdict.is_none())
}

fn run_cell(scenario: &str, n: usize, seed: u64) -> Option<String> {
    match scenario {
        "corruption-burst" => corruption_burst(n, seed),
        "quorum-omission" => quorum_omission(n, seed),
        "crash-at-worst-time" => crash_at_worst_time(n, seed),
        "slow-coterie-async" => slow_coterie_async(n, seed),
        other => Some(format!("unknown scenario {other:?}")),
    }
}

/// Round agreement: partition `p0` away for rounds 3..=5 (a coterie
/// change), then hit every process with a fresh systemic failure at round
/// `BURST_ROUND`. Theorem 3: agreement holds again at most one round
/// after the final systemic failure.
fn corruption_burst(n: usize, seed: u64) -> Option<String> {
    const BURST_ROUND: u64 = 8;
    let rounds = 14;
    let run_cfg = RunConfig::corrupted(n, rounds, seed)
        .with_mid_run_corruption(CorruptionSchedule::none().at(BURST_ROUND, seed ^ 0xb127));
    let mut adv = GroupPartition::new([ProcessId(0)], 3, 5);
    let out = SyncRunner::new(RoundAgreement)
        .run(&mut adv, &run_cfg)
        .map_err(|e| e.to_string())
        .ok()?;
    let m = measured_stabilization_time(&out.history, &RateAgreementSpec::new())?;
    // The measured `s` counts rounds skipped from the final window's
    // start; the burst may land inside that window, so Theorem 3's
    // "1 round after the final failure" translates to skipping everything
    // up to and including the burst round plus one.
    let allowed = if (m.window_start as u64) <= BURST_ROUND {
        (BURST_ROUND - m.window_start as u64) as usize + 1
    } else {
        1
    };
    match m.stabilization_rounds {
        Some(s) if s <= allowed => None,
        Some(s) => Some(format!(
            "thm3: stabilized {s} rounds into the final window, burst allows {allowed}"
        )),
        None => Some("thm3: never stabilized after burst".into()),
    }
}

/// The compiled `Π⁺` (FloodSet, `f = 1`) under a seeded omission
/// adversary that degrades `p0`'s links at `p_drop = 0.6` for the whole
/// run. Theorem 4: stabilization within `2·final_round + 2`.
fn quorum_omission(n: usize, seed: u64) -> Option<String> {
    let inputs: Vec<u64> = (0..n as u64).map(|i| (i * 17 + seed) % 100).collect();
    let pi = Compiled::new(FloodSet::new(1, inputs));
    let fr = ftss::core::saturating_round_index(pi.final_round());
    let bound = 2 * fr + 2;
    let rounds = 6 * (fr + 1) + 4;
    let mut adv = RandomOmission::new([ProcessId(0)], 0.6, seed);
    let out = SyncRunner::new(pi)
        .run(&mut adv, &RunConfig::corrupted(n, rounds, seed))
        .map_err(|e| e.to_string())
        .ok()?;
    thm4_compiled(
        &out.history,
        &RepeatedConsensusSpec::agreement_only(),
        bound,
    )
}

/// The compiled `Π⁺` with `p1` crashing exactly at the end of the first
/// full iteration, having emitted only its first copy of the round — the
/// crash placement most likely to split the survivors. Theorem 4 again.
fn crash_at_worst_time(n: usize, seed: u64) -> Option<String> {
    let inputs: Vec<u64> = (0..n as u64).map(|i| (i * 31 + seed) % 100).collect();
    let pi = Compiled::new(FloodSet::new(1, inputs));
    let fr = ftss::core::saturating_round_index(pi.final_round());
    let bound = 2 * fr + 2;
    let rounds = 6 * (fr + 1) + 4;
    // Crash during the final round of the second compiled iteration: the
    // corrupted first iteration is still settling when the crash lands.
    let crash_round = (2 * fr).max(1) as u64;
    let mut schedule = CrashSchedule::none();
    schedule.set(ProcessId(1), Round::new(crash_round));
    let mut adv = CrashOnly::new(schedule).with_partial_sends(1);
    let out = SyncRunner::new(pi)
        .run(&mut adv, &RunConfig::corrupted(n, rounds, seed))
        .map_err(|e| e.to_string())
        .ok()?;
    thm4_compiled(
        &out.history,
        &RepeatedConsensusSpec::agreement_only(),
        bound,
    )
}

/// The ◇S detector from a fully poisoned state (everyone believes
/// everyone else dead at `v = 10^9`), with `p0` genuinely crashing and an
/// [`AdversaryScheduler`] stretching every message touching `p1` to the
/// maximum admissible delay. Theorem 5: completeness and accuracy settle
/// anyway.
fn slow_coterie_async(n: usize, seed: u64) -> Option<String> {
    let crash_at: Time = 500;
    let crashes: Vec<(ProcessId, Time)> = vec![(ProcessId(0), crash_at)];
    let oracle = WeakOracle::new(n, crashes.clone(), 0, seed, 0.0);
    let mut procs: Vec<StrongDetectorProcess> = (0..n)
        .map(|i| StrongDetectorProcess::new(ProcessId(i), oracle.clone(), 20))
        .collect();
    for (i, p) in procs.iter_mut().enumerate() {
        for s in 0..n {
            if s == i {
                p.num[s] = 0;
                p.state[s] = LifeState::Alive;
            } else {
                p.num[s] = 1_000_000_000;
                p.state[s] = LifeState::Dead;
            }
        }
    }
    let mut cfg = AsyncConfig::tame(seed);
    cfg.crashes = crashes.clone();
    let sched = AdversaryScheduler::new([ProcessId(1)]);
    let mut runner = match AsyncRunner::with_scheduler(procs, cfg, sched) {
        Ok(r) => r,
        Err(e) => return Some(format!("thm5: bad config: {e}")),
    };
    let mut probes = Vec::new();
    runner.run_probed(8_000, 200, |t, ps| probes.push(SuspectProbe::sample(t, ps)));
    let crashed = ProcessSet::from_iter_n(n, crashes.iter().map(|&(p, _)| p));
    let correct = crashed.complement();
    thm5_detector(&probes, &crashed, &correct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_rejects_tiny_n() {
        assert!(run_battery(&BatteryConfig::new(2, 1, 1)).is_err());
    }

    #[test]
    fn every_scenario_passes_at_default_size() {
        let rows = run_battery(&BatteryConfig::new(5, 2, 1)).unwrap();
        assert_eq!(rows.len(), SCENARIOS.len() * 2);
        for r in &rows {
            assert!(r.verdict.is_none(), "{r}");
        }
    }
}
