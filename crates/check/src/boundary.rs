//! E10 — the fault-class boundary map.
//!
//! Theorem 2 separates the solvable from the unsolvable: round agreement
//! is ftss-solvable under general omission (Theorem 3), while arbitrary
//! (Byzantine) behavior re-draws the boundary at `n > 4f` for the
//! self-stabilizing phase-king rendition. This sweep measures that map
//! *empirically*: a grid of fault class × `f` × `n`, each cell a seeded
//! run checked by [`window_stabilization`] against the class's theorem
//! bound. A cell that never re-stabilizes inside the bound is recorded
//! as a violation — data, not a test failure — so the table shows where
//! each fault class crosses its solvability line.
//!
//! Per-class setup:
//!
//! * **omission** — Figure 1's round agreement under `f` random omitters
//!   (p = 0.5) from a corrupted start. The checked bound is 2: one round
//!   to absorb a corrupt maximum that omission may deliver unevenly, one
//!   to re-synchronize (the chaos engine's storm bound, DESIGN.md §11).
//! * **byzantine** — [`SsByzantine`] under a message-forging
//!   [`ByzantineAdversary`] with `f` traitors, checked against the
//!   protocol's own `stabilization_bound()` with the value-agreement
//!   oracle. Rows with `n ≤ 4f` sit beyond the solvability boundary and
//!   are *expected* to record violations.
//! * **churn** — round agreement through a Join episode: `f` processes
//!   fall silent for the storm rounds, then re-enter with arbitrary
//!   (targeted-corrupted) state. Checked bound 2 from the storm's end,
//!   the same window the chaos soaks pin.

use crate::oracle::window_stabilization;
use crate::runbuild::RunBuilder;
use ftss::analysis::Table;
use ftss::core::{ProcessId, RateAgreementSpec, StormKind, StormPhase};
use ftss::protocols::{SsByzantine, ValueAgreementSpec};
use ftss::sync_sim::{
    ByzantineAdversary, CorruptionSchedule, RandomOmission, RunConfig, StormAdversary, SyncRunner,
};
use ftss_sweep::{max, mean, sweep_rows};

/// Default seed count of the E10 sweep.
pub const E10_SEEDS: u64 = 3;
/// Rounds per E10 run — past the largest Byzantine bound in the grid
/// (`1 + 4(f+1) = 21` at `f = 4`) with slack for the suffix check.
pub const E10_ROUNDS: usize = 28;
/// The churn episode's silent rounds (the joiner re-enters at round 7).
pub const E10_STORM: (u64, u64) = (4, 6);

/// The fault class of one E10 row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// General omission: copies dropped by declared-faulty processes.
    Omission,
    /// Byzantine: declared-faulty processes forge message contents.
    Byzantine,
    /// Join/leave churn: processes silent, then re-entering with
    /// arbitrary state.
    Churn,
}

impl FaultClass {
    /// The class label used in the table.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Omission => "omission",
            FaultClass::Byzantine => "byzantine",
            FaultClass::Churn => "churn",
        }
    }
}

/// One row of the E10 boundary map.
#[derive(Clone, Debug)]
pub struct E10Row {
    /// System size.
    pub n: usize,
    /// Faulty-process count (omitters, traitors, or churners).
    pub f: usize,
    /// The fault class.
    pub class: FaultClass,
}

impl E10Row {
    /// The stabilization bound this row is checked against.
    pub fn bound(&self) -> usize {
        match self.class {
            FaultClass::Omission | FaultClass::Churn => 2,
            FaultClass::Byzantine => SsByzantine::new(self.f).stabilization_bound(),
        }
    }

    /// Whether the row sits inside the class's solvability region
    /// (`n > 4f` for Byzantine; everywhere we grid otherwise).
    pub fn solvable(&self) -> bool {
        match self.class {
            FaultClass::Omission | FaultClass::Churn => true,
            FaultClass::Byzantine => self.n > 4 * self.f,
        }
    }
}

/// The E10 grid: fault class × `f` × `n ∈ {4, 8, 16}`, restricted to
/// `n <= max_n`. The Byzantine sub-grid straddles its `n > 4f` boundary
/// on purpose: `(n=4, f=1)` and `(n=16, f=4)` sit beyond it.
pub fn e10_rows(max_n: usize) -> Vec<E10Row> {
    let mut rows = Vec::new();
    for n in [4usize, 8, 16] {
        if n > max_n {
            continue;
        }
        let quarter = (n / 4).max(1);
        rows.push(E10Row {
            n,
            f: quarter,
            class: FaultClass::Omission,
        });
        // One traitor everywhere, plus the boundary-straddling pair at
        // n = 16 (f = 3 solvable, f = 4 not).
        rows.push(E10Row {
            n,
            f: 1,
            class: FaultClass::Byzantine,
        });
        if n == 16 {
            for f in [3usize, 4] {
                rows.push(E10Row {
                    n,
                    f,
                    class: FaultClass::Byzantine,
                });
            }
        }
        rows.push(E10Row {
            n,
            f: quarter,
            class: FaultClass::Churn,
        });
    }
    rows
}

/// The first `f` processes — the grid's canonical faulty set.
fn victims(f: usize) -> Vec<ProcessId> {
    (0..f).map(ProcessId).collect()
}

/// Runs one cell and measures stabilization against the row's bound.
/// `None` means the bound was violated (the run never produced a clean
/// suffix inside it) — recorded as data, not panicked on.
pub fn run_e10_cell(row: &E10Row, seed: u64) -> Option<usize> {
    let corruption = seed.wrapping_mul(0x9e37) ^ (row.n as u64) << 8 ^ row.f as u64;
    match row.class {
        FaultClass::Omission => {
            let mut adv = RandomOmission::new(victims(row.f), 0.5, seed);
            let out = RunBuilder::corrupted(row.n, E10_ROUNDS, corruption).run(&mut adv);
            window_stabilization(
                &out.history,
                &RateAgreementSpec::new(),
                1,
                E10_ROUNDS,
                row.bound(),
            )
            .ok()
        }
        FaultClass::Byzantine => {
            let mut adv = ByzantineAdversary::new(victims(row.f), 0.8, seed);
            let cfg = RunConfig::corrupted(row.n, E10_ROUNDS, corruption).with_max_faulty(row.f);
            let out = SyncRunner::new(SsByzantine::new(row.f))
                .run(&mut adv, &cfg)
                .expect("validated E10 configuration");
            window_stabilization(
                &out.history,
                &ValueAgreementSpec,
                1,
                E10_ROUNDS,
                row.bound(),
            )
            .ok()
        }
        FaultClass::Churn => {
            let (start, end) = E10_STORM;
            let mut adv = StormAdversary::new(
                victims(row.f),
                [StormPhase::new(start, end, StormKind::Join)],
                seed ^ 0x517a,
            );
            let schedule =
                CorruptionSchedule::none().at_targeted(end + 1, seed ^ 0x9014, victims(row.f));
            let cfg = RunConfig::corrupted(row.n, E10_ROUNDS, corruption)
                .with_mid_run_corruption(schedule)
                .with_max_faulty(row.f);
            let out = SyncRunner::new(ftss::protocols::RoundAgreement)
                .run(&mut adv, &cfg)
                .expect("validated E10 configuration");
            window_stabilization(
                &out.history,
                &RateAgreementSpec::new(),
                end as usize,
                E10_ROUNDS,
                row.bound(),
            )
            .ok()
        }
    }
}

/// E10 — the boundary-map table: per row, the measured stabilization
/// across seeds and whether every seed landed inside the theorem bound.
/// Byte-identical for any `jobs`, like every sweep table.
pub fn e10_table(seeds: u64, max_n: usize, jobs: usize) -> Table {
    let rows = e10_rows(max_n);
    let per_row = sweep_rows(&rows, seeds, jobs, run_e10_cell);
    let mut t = Table::new(vec![
        "n",
        "f",
        "class",
        "solvable",
        "bound",
        "mean stab",
        "max stab",
        "within",
    ]);
    for (row, measured) in rows.iter().zip(&per_row) {
        let ok: Vec<usize> = measured.iter().flatten().copied().collect();
        t.row(vec![
            row.n.to_string(),
            row.f.to_string(),
            row.class.name().into(),
            if row.solvable() { "yes" } else { "no" }.into(),
            row.bound().to_string(),
            mean(&ok),
            max(&ok),
            if ok.len() == measured.len() {
                "yes".into()
            } else {
                format!(
                    "NO ({}/{} violated)",
                    measured.len() - ok.len(),
                    measured.len()
                )
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_grid_straddles_the_byzantine_boundary() {
        let rows = e10_rows(usize::MAX);
        assert_eq!(rows.len(), 11);
        assert!(rows
            .iter()
            .any(|r| r.class == FaultClass::Byzantine && !r.solvable()));
        assert!(rows
            .iter()
            .any(|r| r.class == FaultClass::Byzantine && r.solvable()));
        assert!(e10_rows(4).iter().all(|r| r.n == 4));
    }

    #[test]
    fn omission_and_churn_cells_stay_inside_the_bound() {
        for row in e10_rows(8) {
            if row.class == FaultClass::Byzantine {
                continue;
            }
            let s = run_e10_cell(&row, 1).unwrap_or_else(|| {
                panic!(
                    "{} n={} f={} violated its bound",
                    row.class.name(),
                    row.n,
                    row.f
                )
            });
            assert!(s <= row.bound());
        }
    }

    #[test]
    fn byzantine_cells_respect_the_solvability_line() {
        // Inside the region (n = 8, f = 1): every seed recovers.
        let inside = E10Row {
            n: 8,
            f: 1,
            class: FaultClass::Byzantine,
        };
        for seed in 0..E10_SEEDS {
            assert!(
                run_e10_cell(&inside, seed).is_some(),
                "seed {seed} violated"
            );
        }
        // Beyond it (n = 4, f = 1, n ≤ 4f): the traitor king splits the
        // correct processes every session; the bound cannot hold.
        let beyond = E10Row {
            n: 4,
            f: 1,
            class: FaultClass::Byzantine,
        };
        assert!(
            (0..E10_SEEDS).any(|seed| run_e10_cell(&beyond, seed).is_none()),
            "expected at least one violation beyond the boundary"
        );
    }

    #[test]
    fn e10_table_is_jobs_invariant() {
        let serial = e10_table(2, 8, 1).to_string();
        let parallel = e10_table(2, 8, 4).to_string();
        assert_eq!(serial, parallel);
        assert!(serial.contains("yes"), "{serial}");
    }
}
