//! Property oracles: Theorems 3–5 as plain functions over recorded runs.
//!
//! An oracle inspects a finished run (a [`History`] or a probe sequence)
//! and returns a [`Verdict`]: `None` for "property holds", `Some(detail)`
//! for a violation. Oracles contain no checking logic of their own — they
//! delegate to the theory layer (`ftss_core::ftss_check`,
//! `ftss_analysis::measured_stabilization_time`,
//! `ftss_detectors::properties`) and compress the result into a single
//! line suitable for schedule files and CLI output.

use ftss::analysis::measured_stabilization_time;
use ftss::core::{ftss_check, History, Problem, ProcessSet, RateAgreementSpec};
use ftss::detectors::{eventual_weak_accuracy, strong_completeness_time, SuspectProbe};

/// `None` = property holds; `Some(detail)` = violation, one line.
pub type Verdict = Option<String>;

/// Flattens a multi-line message into the single line the schedule-file
/// format requires.
fn one_line(s: &str) -> String {
    s.split('\n')
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect::<Vec<_>>()
        .join("; ")
}

/// **Theorem 3**: round agreement ftss-solved with stabilization time
/// `stabilization` (the theorem proves 1). Checks *every* Definition-2.4
/// obligation of the history via [`ftss_check`].
pub fn thm3_round_agreement<S, M>(history: &History<S, M>, stabilization: usize) -> Verdict {
    let report = ftss_check(history, &RateAgreementSpec::new(), stabilization);
    if report.is_satisfied() {
        None
    } else {
        let first = &report.violations[0];
        Some(one_line(&format!(
            "thm3: {} of {} obligations failed at stabilization {}; first: {}",
            report.violations.len(),
            report.obligations_checked,
            stabilization,
            first
        )))
    }
}

/// **Theorem 4**: a compiled `Π⁺` stabilizes within `bound` rounds of the
/// final stable window (the theorem proves `2·final_round + 2`). Measured
/// empirically on the final coterie-stable window, so it composes with
/// mid-run corruption and omission adversaries.
pub fn thm4_compiled<S, M>(
    history: &History<S, M>,
    spec: &dyn Problem<S, M>,
    bound: usize,
) -> Verdict {
    let Some(m) = measured_stabilization_time(history, spec) else {
        return Some("thm4: empty history".into());
    };
    match m.stabilization_rounds {
        Some(s) if s <= bound => None,
        Some(s) => Some(format!(
            "thm4: stabilized in {s} rounds, bound is {bound} (window {}..{})",
            m.window_start, m.window_end
        )),
        None => Some(format!(
            "thm4: never satisfied within final window {}..{} (bound {bound})",
            m.window_start, m.window_end
        )),
    }
}

/// [`thm4_compiled`]'s *decided* variant: a violation is reported only
/// when no extension of the run could repair it. A window of duration
/// `d ≤ bound` that has not yet satisfied the problem is still open —
/// offsets `d..=bound` have not happened — so [`thm4_compiled`] calls it
/// "never satisfied" while this oracle stays silent. Once the window
/// outlives the bound (or the measured time exceeds it), every offset
/// `s ≤ bound` has failed for good: agreement at a past prefix and the
/// rates behind it are history, so the verdict can only be confirmed by
/// more rounds, never reversed. This is the whole-history counterpart of
/// the per-edge stabilization-time atom in [`crate::frontier::check_edge`]
/// (graph mode must not flag windows that are merely young, or every
/// corrupted start would "violate" at depth 1).
pub fn thm4_decided<S, M>(
    history: &History<S, M>,
    spec: &dyn Problem<S, M>,
    bound: usize,
) -> Verdict {
    let m = measured_stabilization_time(history, spec)?;
    match m.stabilization_rounds {
        Some(s) if s <= bound => None,
        Some(s) => Some(format!(
            "thm4: stabilized in {s} rounds, bound is {bound} (window {}..{})",
            m.window_start, m.window_end
        )),
        None if m.window_len() > bound => Some(format!(
            "thm4: no offset <= {bound} satisfies window {}..{}",
            m.window_start, m.window_end
        )),
        None => None, // window younger than the bound: still open
    }
}

/// Piece-wise stability on an *explicit* window: the smallest `s` such
/// that `problem` holds on the prefix-length window `[from_len − 1 + s,
/// to_len]`, with the faulty set taken up to `to_len`. This is
/// [`measured_stabilization_time`] generalized from the final
/// coterie-stable window to any caller-chosen window — the seam the chaos
/// engine (`ftss-chaos`) uses to verify recovery *per storm epoch*,
/// measuring from the end of each storm instead of only once per run.
///
/// Returns `Ok(s)` when the measured stabilization `s` is within `bound`.
///
/// # Errors
///
/// * the window is out of range for the history,
/// * the problem first holds at `s > bound`, or
/// * the problem never holds anywhere in the window.
pub fn window_stabilization<S, M>(
    history: &History<S, M>,
    problem: &dyn Problem<S, M>,
    from_len: usize,
    to_len: usize,
    bound: usize,
) -> Result<usize, String> {
    if from_len == 0 || from_len > to_len || to_len > history.len() {
        return Err(format!(
            "window {from_len}..{to_len} out of range for a {}-round history",
            history.len()
        ));
    }
    // On a windowed history the slice below starts at prefix `from_len − 1`;
    // asking for anything inside the evicted region would panic in
    // `History::slice`, so refuse it here with a real error instead.
    if from_len - 1 < history.evicted() {
        return Err(format!(
            "window {from_len}..{to_len} starts inside the evicted region \
             ({} rounds evicted from the retention window)",
            history.evicted()
        ));
    }
    let faulty = history.faulty_upto(to_len);
    let duration = to_len - from_len + 1;
    for s in 0..duration {
        let start = from_len - 1 + s;
        if problem.check(history.slice(start, to_len), &faulty).is_ok() {
            return if s <= bound {
                Ok(s)
            } else {
                Err(format!(
                    "stabilized {s} rounds into window {from_len}..{to_len}, bound is {bound}"
                ))
            };
        }
    }
    Err(format!(
        "never satisfied within window {from_len}..{to_len} (bound {bound})"
    ))
}

/// **Theorem 5**: the self-stabilizing ◇S detector settles — strong
/// completeness (every crashed process eventually suspected by all
/// correct processes; vacuous with no crashes) and eventual weak accuracy
/// (some correct process eventually trusted by all correct processes) —
/// even after a corrupted prefix.
pub fn thm5_detector(
    probes: &[SuspectProbe],
    crashed: &ProcessSet,
    correct: &ProcessSet,
) -> Verdict {
    let comp = strong_completeness_time(probes, crashed, correct);
    if comp.is_none() && !crashed.is_empty() {
        return Some("thm5: strong completeness never settled".into());
    }
    if eventual_weak_accuracy(probes, correct).is_none() {
        return Some("thm5: eventual weak accuracy never settled".into());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftss::core::RateAgreementSpec;
    use ftss::protocols::RoundAgreement;
    use ftss::sync_sim::{NoFaults, RunConfig, SyncRunner};

    #[test]
    fn window_stabilization_matches_full_run_measurement() {
        let out = SyncRunner::new(RoundAgreement)
            .run(&mut NoFaults, &RunConfig::corrupted(4, 10, 3))
            .unwrap();
        // Whole run, generous bound: same answer as the final-window
        // measurement (the clean run's final window spans everything).
        let s = window_stabilization(&out.history, &RateAgreementSpec::new(), 1, 10, 1)
            .expect("recovers within Thm 3's bound");
        assert!(s <= 1);
        // A sub-window starting after stabilization measures zero.
        let s = window_stabilization(&out.history, &RateAgreementSpec::new(), 5, 10, 0).unwrap();
        assert_eq!(s, 0);
    }

    #[test]
    fn window_stabilization_rejects_bad_windows_and_tight_bounds() {
        let out = SyncRunner::new(RoundAgreement)
            .run(&mut NoFaults, &RunConfig::corrupted(3, 6, 7))
            .unwrap();
        assert!(window_stabilization(&out.history, &RateAgreementSpec::new(), 0, 6, 1).is_err());
        assert!(window_stabilization(&out.history, &RateAgreementSpec::new(), 4, 2, 1).is_err());
        assert!(window_stabilization(&out.history, &RateAgreementSpec::new(), 1, 99, 1).is_err());
        // Seed 7 genuinely disagrees at the corrupted start (see the thm3
        // test below), so a zero bound over the full window must fail and
        // name the measured value.
        let err = window_stabilization(&out.history, &RateAgreementSpec::new(), 1, 6, 0)
            .expect_err("corrupted start cannot satisfy bound 0");
        assert!(err.contains("bound is 0"), "got: {err}");
    }

    #[test]
    fn window_stabilization_at_the_eviction_boundary() {
        // 12 rounds retained to a window of 8: rounds 1..=4 are evicted,
        // so prefix lengths 1..=4 are gone and 5 is the first answerable
        // window start (`from_len − 1 == evicted()`).
        let out = crate::runbuild::RunBuilder::corrupted(4, 12, 3)
            .with_history_window(8)
            .run(&mut NoFaults);
        assert_eq!(out.history.evicted(), 4);
        // Exactly on the boundary: the oracle can answer.
        let s = window_stabilization(&out.history, &RateAgreementSpec::new(), 5, 12, 1)
            .expect("window starting at the first retained round is answerable");
        assert!(s <= 1);
        // One round earlier the slice would need an evicted frame: a real
        // error, not a panic.
        let err = window_stabilization(&out.history, &RateAgreementSpec::new(), 4, 12, 1)
            .expect_err("window reaching into the evicted region must be refused");
        assert!(err.contains("evicted"), "got: {err}");
        // Same for a window wholly inside the evicted prefix.
        let err = window_stabilization(&out.history, &RateAgreementSpec::new(), 1, 12, 1)
            .expect_err("fully evicted window start must be refused");
        assert!(err.contains("evicted"), "got: {err}");
    }

    #[test]
    fn thm3_passes_at_one_and_fails_at_zero_from_corruption() {
        // Seed picked so the corrupted start genuinely disagrees: the
        // stabilization-0 oracle must reject it, the theorem's bound of 1
        // must accept it (Theorem 3).
        let out = SyncRunner::new(RoundAgreement)
            .run(&mut NoFaults, &RunConfig::corrupted(3, 6, 7))
            .unwrap();
        assert_eq!(thm3_round_agreement(&out.history, 1), None);
        let v = thm3_round_agreement(&out.history, 0).expect("corrupted start violates r=0");
        assert!(v.starts_with("thm3:"), "got: {v}");
        assert!(!v.contains('\n'), "verdict must be one line: {v}");
    }
}
