//! Canonical state encoding, symmetry canonicalization, fingerprints.
//!
//! The graph explorer ([`crate::frontier`]) walks the reachable-state
//! *graph* of the omission-schedule model instead of the schedule tree,
//! so it needs an identity for a global state. That identity is built in
//! three layers, each defined here:
//!
//! 1. **Canonical node state** ([`NodeState`]) — everything the future of
//!    a run depends on, and nothing more: round counters *normalized by
//!    subtracting the minimum* (round agreement's dynamics and all of
//!    Theorem 3's obligations are invariant under a common shift, so two
//!    global states that differ by one are bisimilar), the last round's
//!    per-process rate flags, the causal-ancestor matrix, the deviation
//!    flag of the faulty process, and the current coterie-stable-window
//!    summary (coterie, saturated stable length, first-window flag).
//!    Depth is deliberately *not* part of the state: a state reached at
//!    round 3 and round 7 has the same obligations ahead of it, which is
//!    what lets the explorer run to a **fixpoint** and certify unbounded
//!    horizons.
//! 2. **Symmetry canonicalization** ([`NodeState::canonicalize`]) — round
//!    agreement is anonymous (its step is a max over a multiset) and the
//!    omission schedule space is generated per-copy against one faulty
//!    process, so any permutation of the *non-faulty* process indices
//!    maps reachable states to reachable states and violations to
//!    violations. The canonical representative of an orbit is the
//!    lexicographically least [`NodeState::encode`] over all `(n-1)!`
//!    permutations fixing the faulty index; the chosen permutation is
//!    returned so the explorer can reconstruct a concrete witness tape
//!    through the quotient (see DESIGN.md §14 for the soundness
//!    argument).
//! 3. **Fingerprint** ([`Fingerprinter`]) — the canonical encoding hashed
//!    to 128 bits, TLC-style: the visited set stores fingerprints, not
//!    states. Two independent 64-bit multiply–rotate–xor lanes keyed from
//!    a fixed `ftss-rng` SplitMix64 stream; a collision needs two
//!    reachable states agreeing on both lanes (~2⁻¹²⁸ per pair —
//!    negligible at this state-space scale, and deterministic across
//!    runs, jobs and machines, which the byte-identical `--jobs` reports
//!    rely on).

use ftss::core::ProcessId;
use ftss_rng::SplitMix64;

/// Ceiling on `n` for the graph explorer: canonicalization enumerates
/// `(n-1)!` permutations and a round has `2^(2(n-1))` omission masks, so
/// 6 (120 permutations, 1024 masks) is where exhaustiveness stays cheap.
pub const MAX_GRAPH_N: usize = 6;

/// A permutation of process indices, `perm[old] = new`; identities pad
/// the unused tail (n ≤ [`MAX_GRAPH_N`] < 8).
pub type Perm = [u8; 8];

/// The identity permutation.
pub fn identity_perm() -> Perm {
    [0, 1, 2, 3, 4, 5, 6, 7]
}

/// Composes permutations: `(b ∘ a)[i] = b[a[i]]`.
pub fn compose_perm(b: &Perm, a: &Perm) -> Perm {
    let mut out = identity_perm();
    for i in 0..8 {
        out[i] = b[a[i] as usize];
    }
    out
}

/// Everything the future of a crash-free omission run depends on. See
/// the module docs for why each field is here and [`crate::frontier`]
/// for the transition function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeState {
    /// Round counters at the start of the next round, normalized so the
    /// minimum is 0 (shift-invariance).
    pub counters: Vec<u64>,
    /// Bit `j`: process `j`'s counter advanced by exactly 1 in the round
    /// that produced this state (the Definition-2.2 rate obligation for
    /// the pair ending here). All-ones at the root.
    pub rate_ok: u32,
    /// Bit `i` of `reach[j]`: `i` is a causal ancestor of `j`
    /// ([`ftss::core::CausalTracker`] semantics — no intra-round
    /// transitivity, self always included).
    pub reach: Vec<u32>,
    /// Whether the faulty process has deviated (dropped any copy) yet —
    /// i.e. whether it is in `F(H, Π)` for the history so far.
    pub deviated: bool,
    /// The coterie of the current prefix (bit per member).
    pub coterie: u32,
    /// Length of the current coterie-stable window, saturated at the
    /// largest obligation gate (`max(r,1) + 2`); 0 only at the root
    /// (no rounds yet).
    pub stable_len: u8,
    /// Whether the current window is the history's first (only the
    /// `r = 0` oracle distinguishes it, so it is forced false for
    /// `r ≥ 1` to merge more states).
    pub first_window: bool,
    /// Theorem-4 witness liveness for the current stable window: bit 0 is
    /// set while *some* offset `s ≤ r` still satisfies the problem on the
    /// window suffix `[from−1+s .. now]` with the faulty process counted
    /// correct, bit 1 the same with it counted faulty (the effective bit
    /// is chosen by `deviated`, which can flip mid-window). Both set at
    /// the root (no window yet — vacuously alive); see
    /// [`crate::frontier::check_edge`] for the per-edge recurrence.
    pub thm4_alive: u8,
}

impl NodeState {
    /// The root: corrupted initial counters (normalized), vacuously-true
    /// rate flags, identity causality, no deviation, no window yet.
    pub fn root(counters: &[u64], stabilization: usize) -> NodeState {
        let n = counters.len();
        let min = counters.iter().copied().min().unwrap_or(0);
        NodeState {
            counters: counters.iter().map(|c| c - min).collect(),
            rate_ok: mask_full(n),
            reach: (0..n).map(|i| 1u32 << i).collect(),
            deviated: false,
            coterie: 0,
            stable_len: 0,
            first_window: stabilization == 0,
            thm4_alive: 0b11,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.counters.len()
    }

    /// Appends the canonical byte encoding (fixed layout, no padding
    /// ambiguity: n is implicit in the explorer's fixed configuration).
    pub fn encode(&self, out: &mut Vec<u8>) {
        for &c in &self.counters {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&self.rate_ok.to_le_bytes());
        for &r in &self.reach {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.push(self.deviated as u8);
        out.extend_from_slice(&self.coterie.to_le_bytes());
        out.push(self.stable_len);
        out.push(self.first_window as u8);
        out.push(self.thm4_alive);
    }

    /// The state relabeled by `perm` (`perm[old] = new`).
    pub fn permuted(&self, perm: &Perm) -> NodeState {
        let n = self.n();
        let mut counters = vec![0u64; n];
        let mut reach = vec![0u32; n];
        let mut rate_ok = 0u32;
        for old in 0..n {
            let new = perm[old] as usize;
            counters[new] = self.counters[old];
            reach[new] = permute_mask(self.reach[old], perm, n);
            if self.rate_ok & (1 << old) != 0 {
                rate_ok |= 1 << new;
            }
        }
        NodeState {
            counters,
            rate_ok,
            reach,
            deviated: self.deviated,
            coterie: permute_mask(self.coterie, perm, n),
            stable_len: self.stable_len,
            first_window: self.first_window,
            thm4_alive: self.thm4_alive, // set-agnostic booleans: label-invariant
        }
    }

    /// The orbit representative under permutations fixing `faulty`: the
    /// lexicographically least encoding, with the permutation that maps
    /// `self` onto it. Deterministic (ties cannot happen: equal encodings
    /// are equal states, and the first minimal permutation wins).
    pub fn canonicalize(&self, faulty: ProcessId) -> (NodeState, Perm) {
        let n = self.n();
        let mut best = self.clone();
        let mut best_perm = identity_perm();
        let mut best_enc = Vec::new();
        best.encode(&mut best_enc);
        let mut enc = Vec::with_capacity(best_enc.len());
        for perm in perms_fixing(n, faulty.index()) {
            if perm == identity_perm() {
                continue;
            }
            let cand = self.permuted(&perm);
            enc.clear();
            cand.encode(&mut enc);
            if enc < best_enc {
                best_enc.clear();
                best_enc.extend_from_slice(&enc);
                best = cand;
                best_perm = perm;
            }
        }
        (best, best_perm)
    }
}

/// A bitmask with the low `n` bits set.
pub fn mask_full(n: usize) -> u32 {
    (1u32 << n) - 1
}

/// Relabels the set `mask` through `perm`.
fn permute_mask(mask: u32, perm: &Perm, n: usize) -> u32 {
    let mut out = 0u32;
    for (i, &p) in perm.iter().enumerate().take(n) {
        if mask & (1 << i) != 0 {
            out |= 1 << p;
        }
    }
    out
}

/// All permutations of `0..n` that fix `fixed`, in a deterministic
/// order (Heap's algorithm over the free indices).
pub fn perms_fixing(n: usize, fixed: usize) -> Vec<Perm> {
    let free: Vec<u8> = (0..n as u8).filter(|&i| i as usize != fixed).collect();
    let mut arrangements = Vec::new();
    let mut work = free.clone();
    permute_rec(&mut work, 0, &mut arrangements);
    arrangements
        .into_iter()
        .map(|arr| {
            let mut perm = identity_perm();
            for (slot, &img) in free.iter().zip(arr.iter()) {
                perm[*slot as usize] = img;
            }
            perm
        })
        .collect()
}

fn permute_rec(work: &mut Vec<u8>, k: usize, out: &mut Vec<Vec<u8>>) {
    if k == work.len() {
        out.push(work.clone());
        return;
    }
    for i in k..work.len() {
        work.swap(k, i);
        permute_rec(work, k + 1, out);
        work.swap(k, i);
    }
}

/// Seed of the fingerprint keys. Fixed, not configurable: fingerprints
/// must agree across every run, job and machine for the visited set,
/// witness reconstruction and byte-identical reports to compose.
const FINGERPRINT_SEED: u64 = 0x6674_7373_6670_3031; // "ftssfp01"

/// A keyed 128-bit fingerprint function over canonical encodings.
#[derive(Clone, Debug)]
pub struct Fingerprinter {
    keys: [u64; 4],
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

impl Fingerprinter {
    /// The fingerprinter, keyed from the fixed seed via
    /// [`ftss_rng::SplitMix64`].
    pub fn new() -> Self {
        let mut sm = SplitMix64::new(FINGERPRINT_SEED);
        // Multiplier keys must be odd to be bijective mod 2^64.
        let keys = [
            sm.next_u64() | 1,
            sm.next_u64() | 1,
            sm.next_u64() | 1,
            sm.next_u64() | 1,
        ];
        Fingerprinter { keys }
    }

    /// Hashes `bytes` to 128 bits: two independent multiply–rotate–xor
    /// lanes over 8-byte words (zero-padded tail, length absorbed last).
    pub fn fingerprint(&self, bytes: &[u8]) -> u128 {
        let mut h1 = self.keys[0];
        let mut h2 = self.keys[2];
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            let w = u64::from_le_bytes(word);
            h1 = (h1 ^ w).wrapping_mul(self.keys[1]).rotate_left(29);
            h2 = (h2 ^ w).wrapping_mul(self.keys[3]).rotate_left(31);
        }
        h1 ^= bytes.len() as u64;
        h2 ^= (bytes.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((finalize(h1) as u128) << 64) | finalize(h2) as u128
    }

    /// Fingerprint of a node's canonical encoding, reusing `scratch`.
    pub fn node(&self, node: &NodeState, scratch: &mut Vec<u8>) -> u128 {
        scratch.clear();
        node.encode(scratch);
        self.fingerprint(scratch)
    }
}

/// SplitMix64's avalanche finalizer: every input bit flips every output
/// bit with probability ≈ 1/2.
fn finalize(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> NodeState {
        NodeState {
            counters: (0..n as u64).collect(),
            rate_ok: mask_full(n) & !2,
            reach: (0..n)
                .map(|i| mask_full(n) & !(1 << i) | (1 << i))
                .collect(),
            deviated: true,
            coterie: 1,
            stable_len: 2,
            first_window: false,
            thm4_alive: 0b11,
        }
    }

    #[test]
    fn perms_fixing_counts_and_fixes() {
        let perms = perms_fixing(4, 0);
        assert_eq!(perms.len(), 6, "3! permutations fixing p0");
        for p in &perms {
            assert_eq!(p[0], 0, "faulty index must stay fixed");
            let mut seen: Vec<u8> = p[..4].to_vec();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3], "must be a permutation");
        }
        assert_eq!(perms_fixing(2, 0).len(), 1, "n=2: identity only");
    }

    #[test]
    fn canonicalize_is_orbit_invariant_and_idempotent() {
        let s = sample(4);
        let (canon, perm) = s.canonicalize(ProcessId(0));
        assert_eq!(s.permuted(&perm), canon);
        // Idempotent: the representative is its own representative.
        let (canon2, perm2) = canon.canonicalize(ProcessId(0));
        assert_eq!(canon2, canon);
        assert_eq!(perm2, identity_perm());
        // Every orbit member canonicalizes to the same representative.
        for p in perms_fixing(4, 0) {
            let member = s.permuted(&p);
            let (c, _) = member.canonicalize(ProcessId(0));
            assert_eq!(c, canon, "orbit member disagreed on representative");
        }
    }

    #[test]
    fn compose_matches_sequential_permutation() {
        let s = sample(4);
        let perms = perms_fixing(4, 0);
        let (a, b) = (perms[1], perms[3]);
        let ab = compose_perm(&b, &a);
        assert_eq!(s.permuted(&a).permuted(&b), s.permuted(&ab));
    }

    #[test]
    fn fingerprints_are_deterministic_and_discriminating() {
        let f = Fingerprinter::new();
        let mut buf = Vec::new();
        let a = f.node(&sample(4), &mut buf);
        let b = f.node(&sample(4), &mut buf);
        assert_eq!(a, b, "same state, same fingerprint");
        let mut other = sample(4);
        other.counters[2] += 1;
        assert_ne!(a, f.node(&other, &mut buf));
        let mut flag = sample(4);
        flag.first_window = true;
        assert_ne!(a, f.node(&flag, &mut buf));
        let mut alive = sample(4);
        alive.thm4_alive = 0b01;
        assert_ne!(a, f.node(&alive, &mut buf));
        // The two 64-bit lanes are independent: same low half would
        // betray a lane wiring bug.
        assert_ne!(a as u64, (a >> 64) as u64);
    }
}
