//! One builder for the checker's round-agreement runs.
//!
//! Every strategy in this crate executes the same system — Figure 1's
//! round agreement from a seeded corrupted start — but three call sites
//! grew three copies of the `RunConfig`-to-runner plumbing: the schedule
//! enumerator ([`crate::dfs`]), the large-n engine ([`crate::largen`])
//! and now the graph explorer ([`crate::frontier`]). [`RunBuilder`] is
//! the single copy: configure size, length, corruption seed and history
//! retention once, then materialize whichever execution shape the caller
//! needs — a full [`SyncRunner`] run (traced or not) or a resumable
//! [`SyncStepper`] positioned at the corrupted initial state.

use ftss::protocols::{RoundAgreement, RoundAgreementState};
use ftss::sync_sim::stepper::SyncStepper;
use ftss::sync_sim::{Adversary, RunConfig, RunOutcome, SyncRunner};
use ftss::telemetry::TraceSink;

/// A configured round-agreement run, one materialization per strategy.
#[derive(Clone, Debug)]
pub struct RunBuilder {
    n: usize,
    rounds: usize,
    corruption_seed: u64,
    window: Option<usize>,
}

impl RunBuilder {
    /// A run of `rounds` rounds at size `n` from the seeded corrupted
    /// start (the checker's universal starting point — Theorem 3 is about
    /// recovery from arbitrary states).
    pub fn corrupted(n: usize, rounds: usize, corruption_seed: u64) -> Self {
        RunBuilder {
            n,
            rounds,
            corruption_seed,
            window: None,
        }
    }

    /// Retains only the last `window` rounds of history (the large-n
    /// engine's memory bound); oracles must then stay clear of the
    /// evicted region.
    pub fn with_history_window(mut self, window: usize) -> Self {
        self.window = Some(window);
        self
    }

    /// The equivalent [`RunConfig`].
    pub fn run_config(&self) -> RunConfig {
        let cfg = RunConfig::corrupted(self.n, self.rounds, self.corruption_seed);
        match self.window {
            Some(w) => cfg.with_history_window(w),
            None => cfg,
        }
    }

    /// Executes the full run under `adv`, recording history.
    pub fn run(&self, adv: &mut (impl Adversary + ?Sized)) -> RunOutcome<RoundAgreementState, u64> {
        SyncRunner::new(RoundAgreement)
            .run(adv, &self.run_config())
            .expect("validated check configuration")
    }

    /// Executes the full run under `adv` with telemetry.
    pub fn run_traced<T: TraceSink>(
        &self,
        adv: &mut (impl Adversary + ?Sized),
        sink: &mut T,
    ) -> RunOutcome<RoundAgreementState, u64> {
        SyncRunner::new(RoundAgreement)
            .run_traced(adv, &self.run_config(), sink)
            .expect("validated check configuration")
    }

    /// A stepper at the corrupted initial state — the graph explorer's
    /// branch-mid-run seam. Initial states match [`Self::run`]'s exactly
    /// (same corruption RNG, same draw order).
    pub fn stepper(&self) -> SyncStepper<RoundAgreement> {
        SyncStepper::corrupted(RoundAgreement, self.n, self.corruption_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftss::sync_sim::NoFaults;

    #[test]
    fn builder_run_and_stepper_share_the_corrupted_start() {
        let b = RunBuilder::corrupted(4, 3, 0xfeed);
        let out = b.run(&mut NoFaults);
        let stepper = b.stepper();
        let frame = out.history.slice(0, 1).round(0);
        for p in 0..4 {
            assert_eq!(
                frame.record(ftss::core::ProcessId(p)).state_at_start(),
                Some(&stepper.states()[p]),
            );
        }
    }

    #[test]
    fn window_carries_through_to_the_run_config() {
        let b = RunBuilder::corrupted(8, 12, 1).with_history_window(8);
        let out = b.run(&mut NoFaults);
        assert_eq!(out.history.len(), 12);
        assert_eq!(out.history.evicted(), 4);
    }
}
