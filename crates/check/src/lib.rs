//! # ftss-check — a model-checker-lite for the paper's theorems
//!
//! Testing with random seeds samples the schedule space; this crate
//! *covers* it. Three complementary strategies, all deterministic:
//!
//! 1. **Exhaustive enumeration** ([`dfs`]) — for small systems
//!    (`n ≤ 4`), every omission schedule of the synchronous model (a
//!    boolean tape driving [`ftss::sync_sim::TapeOmission`]) and every
//!    dispatch order of the asynchronous model (the explicit choice
//!    stack of [`ftss::async_sim::DfsScheduler`]), within a bounded
//!    event horizon.
//! 2. **Adversarial probing** ([`adversary`]) — for larger systems,
//!    hand-aimed worst cases: corruption bursts at coterie changes,
//!    omission adversaries degrading a quorum, crashes at iteration
//!    boundaries, and maximum-delay scheduling against the ◇S detector.
//! 3. **Property oracles** ([`oracle`]) — Theorems 3, 4 and 5 as plain
//!    functions over recorded runs, reusing the theory-layer checkers.
//! 4. **Graph exploration** ([`frontier`]) — the scale-up path: instead
//!    of enumerating the schedule *tree*, walk the reachable-state
//!    *graph* with fingerprinted dedup ([`fingerprint`]), symmetry
//!    reduction over process relabelings fixing the faulty process, and
//!    a deterministic parallel BFS frontier sharded via
//!    [`ftss_sweep::map_cells`]. Runs to a fixpoint, certifying Thm-3
//!    obligations over *unbounded* horizons at `n ≤ 6` — far past the
//!    `2^min(d,20)` wall of strategy 1.
//!
//! When an oracle rejects a schedule, [`shrink`] reduces it to a
//! 1-minimal counterexample and [`schedule`] writes it as a replayable
//! file: re-running it (`ftss-lab check --replay`) reproduces the
//! violation — and its telemetry trace — byte for byte, because every
//! run in this workspace is a pure function of its configuration.

pub mod adversary;
pub mod boundary;
pub mod dfs;
pub mod fingerprint;
pub mod frontier;
pub mod largen;
pub mod oracle;
pub mod runbuild;
pub mod schedule;
pub mod shrink;

pub use adversary::{all_pass, run_battery, BatteryConfig, BatteryRow, SCENARIOS};
pub use boundary::{e10_rows, e10_table, run_e10_cell, E10Row, FaultClass, E10_ROUNDS, E10_SEEDS};
pub use dfs::{
    check_tape, check_tape_thm4, explore, explore_async, explore_async_por, explore_gossip_por,
    run_tape, AsyncDfsReport, Counterexample, DfsConfig, DfsReport, MAX_TAPE_BOUND,
};
pub use fingerprint::{Fingerprinter, NodeState, MAX_GRAPH_N};
pub use frontier::{explore_graph, GraphConfig, GraphCounterexample, GraphReport};
pub use largen::{e9_rows, e9_table, E9Row, E9_ROUNDS, E9_SEEDS, E9_WINDOW};
pub use oracle::{
    thm3_round_agreement, thm4_compiled, thm4_decided, thm5_detector, window_stabilization, Verdict,
};
pub use schedule::{ScheduleFile, ScheduleMode, HEADER};
pub use shrink::{shrink, shrink_with};
