//! Replayable schedule files.
//!
//! A counterexample is only worth anything if it can be re-executed. The
//! schedule file is a small line-based text format carrying everything a
//! run is a function of — the [`DfsConfig`] and the omission tape — plus
//! the verdict it produced, so replay can confirm the violation
//! reproduces. Because both simulators are pure functions of their
//! configuration, replaying a schedule through the telemetry
//! [`JsonlSink`](ftss::telemetry::JsonlSink) yields **byte-identical**
//! traces on every execution; `ftss-lab check --replay` and the
//! `check_determinism` integration test rely on exactly that.
//!
//! Format (one `key: value` per line, fixed order, `#` comments and blank
//! lines ignored):
//!
//! ```text
//! ftss-check schedule v1
//! protocol: round-agreement
//! n: 3
//! rounds: 2
//! corruption-seed: 7
//! faulty: 0
//! tape-bound: 8
//! stabilization: 0
//! tape: 0110
//! detail: thm3: ...
//! ```
//!
//! The tape is a `0`/`1` string (`-` for the empty tape). `detail` is the
//! oracle's one-line verdict at the time the file was written.
//!
//! Counterexamples found by the graph explorer ([`crate::frontier`])
//! carry a `mode: graph` line after `protocol` — the tape is then a
//! reconstructed witness from the state-graph search path rather than an
//! enumerated schedule. Replay is identical either way (the witness is a
//! plain omission tape), the marker just records provenance; its absence
//! means `enum`, so legacy files keep their exact bytes.
//!
//! The parser is strict: unknown keys, duplicate keys and trailing
//! `key: value` garbage are all rejected — a schedule file that parses is
//! exactly a schedule file this version would write.

use crate::dfs::{check_tape, check_tape_thm4, Counterexample, DfsConfig};
use crate::oracle::Verdict;
use ftss::core::ProcessId;

/// The version line every schedule file starts with.
pub const HEADER: &str = "ftss-check schedule v1";

/// The keys this version writes — and the only ones it accepts.
const KNOWN_KEYS: [&str; 10] = [
    "protocol",
    "mode",
    "n",
    "rounds",
    "corruption-seed",
    "faulty",
    "tape-bound",
    "stabilization",
    "tape",
    "detail",
];

/// How the counterexample was found (provenance marker, not replay
/// behavior — both modes replay as plain omission tapes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScheduleMode {
    /// Enumerated by [`crate::dfs::explore`]. Serialized with no `mode`
    /// line (the v1 spelling, byte-compatible with older files).
    #[default]
    Enum,
    /// Reconstructed from a graph-exploration search path
    /// ([`crate::frontier`]); serialized as `mode: graph`.
    Graph,
}

/// A parsed (or about-to-be-written) schedule file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleFile {
    /// The configuration the run is a function of.
    pub cfg: DfsConfig,
    /// How the counterexample was found.
    pub mode: ScheduleMode,
    /// The omission tape.
    pub tape: Vec<bool>,
    /// The verdict recorded when the file was written.
    pub detail: String,
}

impl ScheduleFile {
    /// Packages an enumerated counterexample for writing.
    pub fn new(cfg: DfsConfig, ce: Counterexample) -> Self {
        ScheduleFile {
            cfg,
            mode: ScheduleMode::Enum,
            tape: ce.tape,
            detail: ce.detail,
        }
    }

    /// Packages a graph-mode counterexample for writing.
    pub fn graph(cfg: DfsConfig, ce: Counterexample) -> Self {
        ScheduleFile {
            mode: ScheduleMode::Graph,
            ..ScheduleFile::new(cfg, ce)
        }
    }

    /// Renders the file. Deterministic: equal values, equal bytes.
    pub fn serialize(&self) -> String {
        let tape: String = if self.tape.is_empty() {
            "-".into()
        } else {
            self.tape
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect()
        };
        let mode = match self.mode {
            ScheduleMode::Enum => String::new(), // v1 spelling: no line
            ScheduleMode::Graph => "mode: graph\n".into(),
        };
        format!(
            "{HEADER}\n\
             protocol: round-agreement\n\
             {mode}\
             n: {}\n\
             rounds: {}\n\
             corruption-seed: {}\n\
             faulty: {}\n\
             tape-bound: {}\n\
             stabilization: {}\n\
             tape: {tape}\n\
             detail: {}\n",
            self.cfg.n,
            self.cfg.rounds,
            self.cfg.corruption_seed,
            self.cfg.faulty.index(),
            self.cfg.tape_bound,
            self.cfg.stabilization,
            self.detail.replace('\n', "; "),
        )
    }

    /// Parses a schedule file, rejecting unknown versions, missing or
    /// duplicate keys, and malformed values.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some(h) if h == HEADER => {}
            Some(h) => return Err(format!("unsupported schedule header: {h:?}")),
            None => return Err("empty schedule file".into()),
        }
        let mut fields: Vec<(String, String)> = Vec::new();
        for line in lines {
            let (k, v) = line
                .split_once(':')
                .ok_or_else(|| format!("malformed schedule line: {line:?}"))?;
            let k = k.trim();
            if !KNOWN_KEYS.contains(&k) {
                return Err(format!("schedule file holds unknown key {k:?}"));
            }
            fields.push((k.to_string(), v.trim().to_string()));
        }
        let take = |key: &str| -> Result<String, String> {
            let mut hits = fields.iter().filter(|(k, _)| k == key);
            let v = hits
                .next()
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("schedule file missing {key:?}"))?;
            if hits.next().is_some() {
                return Err(format!("schedule file repeats {key:?}"));
            }
            Ok(v)
        };
        let num = |key: &str| -> Result<u64, String> {
            take(key)?
                .parse::<u64>()
                .map_err(|e| format!("schedule field {key:?}: {e}"))
        };
        let protocol = take("protocol")?;
        if protocol != "round-agreement" {
            return Err(format!("unsupported schedule protocol: {protocol:?}"));
        }
        // `mode` is optional: absent means enum (v1 files predate it).
        let mode = match fields.iter().filter(|(k, _)| k == "mode").count() {
            0 => ScheduleMode::Enum,
            1 => match take("mode")?.as_str() {
                "enum" => ScheduleMode::Enum,
                "graph" => ScheduleMode::Graph,
                other => return Err(format!("unsupported schedule mode: {other:?}")),
            },
            _ => return Err("schedule file repeats \"mode\"".into()),
        };
        let tape_text = take("tape")?;
        let tape = if tape_text == "-" {
            Vec::new()
        } else {
            tape_text
                .chars()
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    other => Err(format!("schedule tape holds {other:?}, want 0/1")),
                })
                .collect::<Result<Vec<bool>, String>>()?
        };
        Ok(ScheduleFile {
            cfg: DfsConfig {
                n: num("n")? as usize,
                rounds: num("rounds")? as usize,
                corruption_seed: num("corruption-seed")?,
                faulty: ProcessId(num("faulty")? as usize),
                tape_bound: num("tape-bound")? as usize,
                stabilization: num("stabilization")? as usize,
            },
            mode,
            tape,
            detail: take("detail")?,
        })
    }

    /// Re-executes the schedule and returns the fresh verdict. A written
    /// counterexample reproduces iff this equals `Some(self.detail)`.
    ///
    /// A recorded `thm4:` verdict (graph mode's stabilization-time atom)
    /// replays through the Theorem-4 oracle when the Theorem-3 oracle is
    /// silent — such schedules violate stabilization time without
    /// violating any Definition-2.4 obligation.
    pub fn replay(&self) -> Verdict {
        check_tape(&self.cfg, &self.tape).or_else(|| {
            if self.detail.starts_with("thm4:") {
                check_tape_thm4(&self.cfg, &self.tape)
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use ftss_rng::Rng;

    fn sample() -> ScheduleFile {
        let mut cfg = DfsConfig::small(7);
        cfg.stabilization = 0;
        ScheduleFile {
            cfg,
            mode: ScheduleMode::Enum,
            tape: vec![false, true, true, false],
            detail: "thm3: something failed".into(),
        }
    }

    #[test]
    fn serialize_parse_round_trips() {
        let f = sample();
        let text = f.serialize();
        assert_eq!(ScheduleFile::parse(&text).unwrap(), f);
        // Empty tapes round-trip through the `-` spelling.
        let mut empty = sample();
        empty.tape.clear();
        assert_eq!(ScheduleFile::parse(&empty.serialize()).unwrap(), empty);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ScheduleFile::parse("").is_err());
        assert!(ScheduleFile::parse("ftss-check schedule v2\n").is_err());
        let missing = sample().serialize().replace("rounds: 2\n", "");
        assert!(ScheduleFile::parse(&missing).is_err());
        let dup = format!("{}n: 9\n", sample().serialize());
        assert!(ScheduleFile::parse(&dup).is_err());
        let bad_tape = sample().serialize().replace("tape: 0110", "tape: 01x0");
        assert!(ScheduleFile::parse(&bad_tape).is_err());
    }

    #[test]
    fn graph_mode_round_trips_and_legacy_bytes_are_unchanged() {
        let f = ScheduleFile {
            mode: ScheduleMode::Graph,
            ..sample()
        };
        let text = f.serialize();
        assert!(text.contains("\nmode: graph\n"), "{text}");
        assert_eq!(ScheduleFile::parse(&text).unwrap(), f);
        // An explicit `mode: enum` parses; absence means the same thing,
        // and Enum files serialize WITHOUT the line (legacy bytes).
        let enum_text = sample().serialize();
        assert!(!enum_text.contains("mode:"), "{enum_text}");
        let explicit = enum_text.replace(
            "protocol: round-agreement\n",
            "protocol: round-agreement\nmode: enum\n",
        );
        assert_eq!(ScheduleFile::parse(&explicit).unwrap(), sample());
        let bad = enum_text.replace(
            "protocol: round-agreement\n",
            "protocol: round-agreement\nmode: dfs\n",
        );
        assert!(ScheduleFile::parse(&bad).is_err());
    }

    #[test]
    fn parse_rejects_unknown_keys_and_trailing_fields() {
        // Trailing well-formed `key: value` garbage used to be silently
        // ignored; now every key must be one this version writes.
        let trailing = format!("{}x-extra: 1\n", sample().serialize());
        let err = ScheduleFile::parse(&trailing).unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        let interior = sample()
            .serialize()
            .replace("faulty: 0\n", "faulty: 0\nnote: hand-edited\n");
        assert!(ScheduleFile::parse(&interior).is_err());
    }

    /// Forall fuzz, PR-7 framing discipline: random configurations
    /// round-trip exactly; any single injected unknown line flips the
    /// parse to an error; arbitrary mutations never panic.
    #[test]
    fn forall_round_trip_and_mutation_fuzz() {
        ftss_rng::check::forall(80, |g| {
            let f = ScheduleFile {
                cfg: DfsConfig {
                    n: g.gen_range(2..7u64) as usize,
                    rounds: g.gen_range(1..9u64) as usize,
                    corruption_seed: g.next_u64(),
                    faulty: ftss::core::ProcessId(g.gen_range(0..4u64) as usize),
                    tape_bound: g.gen_range(0..21u64) as usize,
                    stabilization: g.gen_range(0..3u64) as usize,
                },
                mode: if g.gen_bool(0.5) {
                    ScheduleMode::Graph
                } else {
                    ScheduleMode::Enum
                },
                tape: g.vec(0, 24, |g| g.gen_bool(0.5)),
                detail: "thm3: fuzz".into(),
            };
            let text = f.serialize();
            assert_eq!(ScheduleFile::parse(&text).unwrap(), f);

            // Inject an unknown key at a random line boundary: must error.
            let mut lines: Vec<&str> = text.lines().collect();
            let at = 1 + g.gen_range(0..lines.len() as u64 - 1) as usize;
            lines.insert(at, "bogus-key: 1");
            assert!(ScheduleFile::parse(&lines.join("\n")).is_err());

            // Random byte mutation: may parse or not, must never panic.
            let mut bytes = text.into_bytes();
            let at = g.gen_range(0..bytes.len() as u64) as usize;
            bytes[at] = (g.next_u64() & 0x7f) as u8;
            if let Ok(mutated) = String::from_utf8(bytes) {
                let _ = ScheduleFile::parse(&mutated);
            }
        });
    }

    #[test]
    fn replay_reproduces_the_recorded_verdict() {
        // Build a real counterexample via the broken oracle, write it,
        // parse it back, replay it: same one-line verdict.
        let mut cfg = DfsConfig::small(7);
        cfg.stabilization = 0;
        let detail = crate::dfs::check_tape(&cfg, &[]).expect("violates r=0");
        let f = ScheduleFile {
            cfg,
            mode: ScheduleMode::Enum,
            tape: Vec::new(),
            detail: detail.clone(),
        };
        let parsed = ScheduleFile::parse(&f.serialize()).unwrap();
        assert_eq!(parsed.replay(), Some(detail));
    }
}
