//! Replayable schedule files.
//!
//! A counterexample is only worth anything if it can be re-executed. The
//! schedule file is a small line-based text format carrying everything a
//! run is a function of — the [`DfsConfig`] and the omission tape — plus
//! the verdict it produced, so replay can confirm the violation
//! reproduces. Because both simulators are pure functions of their
//! configuration, replaying a schedule through the telemetry
//! [`JsonlSink`](ftss::telemetry::JsonlSink) yields **byte-identical**
//! traces on every execution; `ftss-lab check --replay` and the
//! `check_determinism` integration test rely on exactly that.
//!
//! Format (one `key: value` per line, fixed order, `#` comments and blank
//! lines ignored):
//!
//! ```text
//! ftss-check schedule v1
//! protocol: round-agreement
//! n: 3
//! rounds: 2
//! corruption-seed: 7
//! faulty: 0
//! tape-bound: 8
//! stabilization: 0
//! tape: 0110
//! detail: thm3: ...
//! ```
//!
//! The tape is a `0`/`1` string (`-` for the empty tape). `detail` is the
//! oracle's one-line verdict at the time the file was written.

use crate::dfs::{check_tape, Counterexample, DfsConfig};
use crate::oracle::Verdict;
use ftss::core::ProcessId;

/// The version line every schedule file starts with.
pub const HEADER: &str = "ftss-check schedule v1";

/// A parsed (or about-to-be-written) schedule file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleFile {
    /// The configuration the run is a function of.
    pub cfg: DfsConfig,
    /// The omission tape.
    pub tape: Vec<bool>,
    /// The verdict recorded when the file was written.
    pub detail: String,
}

impl ScheduleFile {
    /// Packages a counterexample for writing.
    pub fn new(cfg: DfsConfig, ce: Counterexample) -> Self {
        ScheduleFile {
            cfg,
            tape: ce.tape,
            detail: ce.detail,
        }
    }

    /// Renders the file. Deterministic: equal values, equal bytes.
    pub fn serialize(&self) -> String {
        let tape: String = if self.tape.is_empty() {
            "-".into()
        } else {
            self.tape
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect()
        };
        format!(
            "{HEADER}\n\
             protocol: round-agreement\n\
             n: {}\n\
             rounds: {}\n\
             corruption-seed: {}\n\
             faulty: {}\n\
             tape-bound: {}\n\
             stabilization: {}\n\
             tape: {tape}\n\
             detail: {}\n",
            self.cfg.n,
            self.cfg.rounds,
            self.cfg.corruption_seed,
            self.cfg.faulty.index(),
            self.cfg.tape_bound,
            self.cfg.stabilization,
            self.detail.replace('\n', "; "),
        )
    }

    /// Parses a schedule file, rejecting unknown versions, missing or
    /// duplicate keys, and malformed values.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some(h) if h == HEADER => {}
            Some(h) => return Err(format!("unsupported schedule header: {h:?}")),
            None => return Err("empty schedule file".into()),
        }
        let mut fields: Vec<(String, String)> = Vec::new();
        for line in lines {
            let (k, v) = line
                .split_once(':')
                .ok_or_else(|| format!("malformed schedule line: {line:?}"))?;
            fields.push((k.trim().to_string(), v.trim().to_string()));
        }
        let take = |key: &str| -> Result<String, String> {
            let mut hits = fields.iter().filter(|(k, _)| k == key);
            let v = hits
                .next()
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("schedule file missing {key:?}"))?;
            if hits.next().is_some() {
                return Err(format!("schedule file repeats {key:?}"));
            }
            Ok(v)
        };
        let num = |key: &str| -> Result<u64, String> {
            take(key)?
                .parse::<u64>()
                .map_err(|e| format!("schedule field {key:?}: {e}"))
        };
        let protocol = take("protocol")?;
        if protocol != "round-agreement" {
            return Err(format!("unsupported schedule protocol: {protocol:?}"));
        }
        let tape_text = take("tape")?;
        let tape = if tape_text == "-" {
            Vec::new()
        } else {
            tape_text
                .chars()
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    other => Err(format!("schedule tape holds {other:?}, want 0/1")),
                })
                .collect::<Result<Vec<bool>, String>>()?
        };
        Ok(ScheduleFile {
            cfg: DfsConfig {
                n: num("n")? as usize,
                rounds: num("rounds")? as usize,
                corruption_seed: num("corruption-seed")?,
                faulty: ProcessId(num("faulty")? as usize),
                tape_bound: num("tape-bound")? as usize,
                stabilization: num("stabilization")? as usize,
            },
            tape,
            detail: take("detail")?,
        })
    }

    /// Re-executes the schedule and returns the fresh verdict. A written
    /// counterexample reproduces iff this equals `Some(self.detail)`.
    pub fn replay(&self) -> Verdict {
        check_tape(&self.cfg, &self.tape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScheduleFile {
        let mut cfg = DfsConfig::small(7);
        cfg.stabilization = 0;
        ScheduleFile {
            cfg,
            tape: vec![false, true, true, false],
            detail: "thm3: something failed".into(),
        }
    }

    #[test]
    fn serialize_parse_round_trips() {
        let f = sample();
        let text = f.serialize();
        assert_eq!(ScheduleFile::parse(&text).unwrap(), f);
        // Empty tapes round-trip through the `-` spelling.
        let mut empty = sample();
        empty.tape.clear();
        assert_eq!(ScheduleFile::parse(&empty.serialize()).unwrap(), empty);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ScheduleFile::parse("").is_err());
        assert!(ScheduleFile::parse("ftss-check schedule v2\n").is_err());
        let missing = sample().serialize().replace("rounds: 2\n", "");
        assert!(ScheduleFile::parse(&missing).is_err());
        let dup = format!("{}n: 9\n", sample().serialize());
        assert!(ScheduleFile::parse(&dup).is_err());
        let bad_tape = sample().serialize().replace("tape: 0110", "tape: 01x0");
        assert!(ScheduleFile::parse(&bad_tape).is_err());
    }

    #[test]
    fn replay_reproduces_the_recorded_verdict() {
        // Build a real counterexample via the broken oracle, write it,
        // parse it back, replay it: same one-line verdict.
        let mut cfg = DfsConfig::small(7);
        cfg.stabilization = 0;
        let detail = crate::dfs::check_tape(&cfg, &[]).expect("violates r=0");
        let f = ScheduleFile {
            cfg,
            tape: Vec::new(),
            detail: detail.clone(),
        };
        let parsed = ScheduleFile::parse(&f.serialize()).unwrap();
        assert_eq!(parsed.replay(), Some(detail));
    }
}
