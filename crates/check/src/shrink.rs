//! Counterexample minimization.
//!
//! A violating tape found by [`crate::dfs::explore`] may drop copies that
//! have nothing to do with the violation. The shrinker reduces it in
//! three deterministic passes, re-running the oracle after every
//! candidate edit so the violation is preserved by construction:
//!
//! 1. **choice-point truncation** — find the *shortest* prefix of the
//!    tape that still violates (everything past the tape defaults to
//!    "deliver", so truncation only removes drops);
//! 2. **greedy event deletion** — flip each remaining `drop` bit to
//!    `deliver`, keeping the flip iff the violation survives;
//! 3. **tail trimming** — strip trailing `deliver` bits (they equal the
//!    past-the-end default, so they carry no information).
//!
//! The result is 1-minimal: no single drop can be removed and no shorter
//! prefix suffices. Each pass is `O(len)` oracle runs — trivial at the
//! explorer's tape bounds.

use crate::dfs::{check_tape, Counterexample, DfsConfig};

/// Shrinks a violating tape to a minimal counterexample against the
/// default Theorem-3 oracle ([`check_tape`]). `tape` must violate it;
/// panics otherwise, because "shrinking" a passing schedule is a harness
/// bug.
pub fn shrink(cfg: &DfsConfig, tape: &[bool]) -> Counterexample {
    shrink_with(cfg, tape, check_tape)
}

/// [`shrink`] with a caller-chosen oracle — the seam graph mode uses to
/// minimize counterexamples of the Theorem-4 stabilization-time atom,
/// whose violations the plain Theorem-3 oracle cannot always see.
pub fn shrink_with(
    cfg: &DfsConfig,
    tape: &[bool],
    oracle: impl Fn(&DfsConfig, &[bool]) -> Option<String>,
) -> Counterexample {
    let mut detail = oracle(cfg, tape).expect("shrink requires a violating schedule");
    let mut best: Vec<bool> = tape.to_vec();

    // Pass 1: shortest violating prefix.
    for k in 0..best.len() {
        if let Some(d) = oracle(cfg, &best[..k]) {
            best.truncate(k);
            detail = d;
            break;
        }
    }

    // Pass 2: greedy deletion of individual drops.
    for i in 0..best.len() {
        if !best[i] {
            continue;
        }
        best[i] = false;
        match oracle(cfg, &best) {
            Some(d) => detail = d,
            None => best[i] = true,
        }
    }

    // Pass 3: trailing delivers are the default — drop them.
    while best.last() == Some(&false) {
        best.pop();
    }

    Counterexample { tape: best, detail }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broken_oracle_shrinks_to_the_empty_tape() {
        // With the deliberately broken stabilization-0 oracle, the
        // corrupted start alone violates — no omission is needed — so any
        // violating tape must shrink to the empty schedule.
        let mut cfg = DfsConfig::small(7);
        cfg.stabilization = 0;
        let noisy = vec![true, false, true, true, false, true];
        assert!(check_tape(&cfg, &noisy).is_some(), "seed must violate r=0");
        let ce = shrink(&cfg, &noisy);
        assert!(ce.tape.is_empty(), "shrunk to {:?}", ce.tape);
        assert!(ce.detail.starts_with("thm3:"));
        // The shrunk schedule still violates, and deterministically so.
        assert_eq!(check_tape(&cfg, &ce.tape), Some(ce.detail.clone()));
    }
}
