//! Exhaustive bounded schedule enumeration — the model checker's core.
//!
//! Two explorers, one per simulator:
//!
//! * [`explore`] walks **every** omission schedule of the synchronous
//!   model against a single faulty process. A schedule is a boolean tape
//!   consumed by [`TapeOmission`] in the runner's deterministic
//!   consultation order, so the set of all length-`d` tapes *is* the set
//!   of all delivery interleavings within the bound — `2^d` runs, checked
//!   against a Theorem-3 oracle.
//! * [`explore_async`] walks every *dispatch order* of the asynchronous
//!   model within an event horizon, driving
//!   [`DfsScheduler`](ftss::async_sim::DfsScheduler)'s explicit choice
//!   stack: each run replays a prefix of recorded choices and the
//!   odometer-style `advance` moves to the next unexplored schedule.
//!
//! Both are plain iterative loops — no recursion, no randomness; every
//! run is a pure function of its schedule, which is what makes
//! counterexamples replayable (see [`crate::schedule`]).

use crate::oracle::{thm3_round_agreement, Verdict};
use crate::runbuild::RunBuilder;
use ftss::async_sim::{AsyncConfig, AsyncProcess, AsyncRunner, DfsScheduler, Time};
use ftss::core::ProcessId;
use ftss::sync_sim::{RunOutcome, TapeOmission};
use ftss::telemetry::TraceSink;

/// Largest admissible tape bound: `2^d` runs must stay test-sized.
pub const MAX_TAPE_BOUND: usize = 20;

/// One synchronous check configuration: the protocol (round agreement),
/// the system size, the systemic failure, the faulty process the omission
/// tape may act through, and the oracle's stabilization bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DfsConfig {
    /// Number of processes (enumeration is bounded to `2..=4`).
    pub n: usize,
    /// Observer rounds per run.
    pub rounds: usize,
    /// Seed of the initial systemic failure (arbitrary corrupted states).
    pub corruption_seed: u64,
    /// The single faulty process the tape's omissions are attributed to.
    pub faulty: ProcessId,
    /// Maximum tape length `d`; the explorer runs `2^min(d, eligible)`
    /// schedules.
    pub tape_bound: usize,
    /// Stabilization time handed to the Theorem-3 oracle (1 = the
    /// theorem's claim; 0 = a deliberately broken oracle that corrupted
    /// starts must violate).
    pub stabilization: usize,
}

impl DfsConfig {
    /// The acceptance-criterion configuration: `n = 3`, one corrupted
    /// initial state per process, omissions through `p0`, Theorem-3 bound.
    pub fn small(corruption_seed: u64) -> Self {
        DfsConfig {
            n: 3,
            rounds: 2,
            corruption_seed,
            faulty: ProcessId(0),
            tape_bound: 8,
            stabilization: 1,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if !(2..=4).contains(&self.n) {
            return Err(format!("check --dfs: n must be in 2..=4, got {}", self.n));
        }
        if self.faulty.index() >= self.n {
            return Err(format!(
                "check --dfs: faulty process {} outside 0..{}",
                self.faulty, self.n
            ));
        }
        if self.rounds == 0 {
            return Err("check --dfs: rounds must be at least 1".into());
        }
        if self.tape_bound > MAX_TAPE_BOUND {
            return Err(format!(
                "check --dfs: tape bound {} exceeds the {MAX_TAPE_BOUND}-bit ceiling ({} runs)",
                self.tape_bound,
                1u64 << MAX_TAPE_BOUND
            ));
        }
        Ok(())
    }
}

/// Executes one schedule: round agreement from corrupted states under the
/// tape's omissions, optionally traced. Returns the outcome and how many
/// eligible copies consulted the tape (the schedule-space dimension).
pub fn run_tape<T: TraceSink>(
    cfg: &DfsConfig,
    tape: &[bool],
    sink: &mut T,
) -> (RunOutcome<ftss::protocols::RoundAgreementState, u64>, usize) {
    let mut adv = TapeOmission::new([cfg.faulty], tape.to_vec());
    let out =
        RunBuilder::corrupted(cfg.n, cfg.rounds, cfg.corruption_seed).run_traced(&mut adv, sink);
    (out, adv.consulted())
}

/// Runs one schedule through the Theorem-3 oracle. This is *the* checked
/// property — the explorer, the shrinker and replay all call it, so a
/// counterexample means the same thing everywhere.
pub fn check_tape(cfg: &DfsConfig, tape: &[bool]) -> Verdict {
    let (out, _) = run_tape(cfg, tape, &mut ftss::telemetry::NullSink);
    thm3_round_agreement(&out.history, cfg.stabilization)
}

/// Runs one schedule through the *decided* Theorem-4 oracle
/// ([`crate::oracle::thm4_decided`]) with the configuration's
/// stabilization as the bound: a violation means the run's final stable
/// window provably cannot stabilize within it, no matter how the run is
/// extended. Graph mode uses this to confirm and shrink counterexamples
/// found by the per-edge stabilization-time atom, and
/// [`crate::schedule::ScheduleFile::replay`] falls back to it for
/// `thm4:` verdicts.
pub fn check_tape_thm4(cfg: &DfsConfig, tape: &[bool]) -> Verdict {
    let (out, _) = run_tape(cfg, tape, &mut ftss::telemetry::NullSink);
    crate::oracle::thm4_decided(
        &out.history,
        &ftss::core::RateAgreementSpec::new(),
        cfg.stabilization,
    )
}

/// A violating schedule: the omission tape and the oracle's one-line
/// verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// The tape that produced the violation.
    pub tape: Vec<bool>,
    /// The oracle's detail line.
    pub detail: String,
}

/// What an exhaustive exploration covered.
#[derive(Clone, Debug)]
pub struct DfsReport {
    /// Schedules executed (`2^decision_points`, unless a violation
    /// stopped the walk early).
    pub schedules: u64,
    /// Tape bits actually enumerated: `min(eligible copies, tape_bound)`.
    pub decision_points: usize,
    /// Eligible copies per run (the unbounded schedule-space dimension).
    pub eligible_copies: usize,
    /// Whether the tape bound clamped the enumeration below the eligible
    /// copies — i.e. coverage is a *prefix* of the schedule space, not
    /// all of it. Graph mode ([`crate::frontier`]) has no such clamp.
    pub clamped: bool,
    /// First violating schedule found, if any (not yet shrunk — see
    /// [`crate::shrink`]).
    pub counterexample: Option<Counterexample>,
}

/// Flips the tape to the next schedule like a binary odometer (the last
/// bit is the deepest choice point). Returns `false` when the space is
/// exhausted.
fn advance_tape(tape: &mut [bool]) -> bool {
    for i in (0..tape.len()).rev() {
        if tape[i] {
            tape[i] = false;
        } else {
            tape[i] = true;
            return true;
        }
    }
    false
}

/// Exhaustively enumerates every omission schedule of `cfg` (all tapes of
/// length `min(eligible, tape_bound)`), checking each against the
/// Theorem-3 oracle. Stops at the first violation.
pub fn explore(cfg: &DfsConfig) -> Result<DfsReport, String> {
    cfg.validate()?;
    // Probe run: the empty tape (everything delivered) both measures the
    // schedule-space dimension and doubles as the all-false schedule.
    let (out, eligible) = run_tape(cfg, &[], &mut ftss::telemetry::NullSink);
    let d = eligible.min(cfg.tape_bound);
    let clamped = eligible > cfg.tape_bound;
    if clamped {
        // Silent truncation reads as "covered everything" — say so loudly
        // (and point at the mode without the wall).
        eprintln!(
            "check --dfs: tape bound {} < {} eligible copies; only the first {} \
             decisions are enumerated (use --graph for exhaustive coverage)",
            cfg.tape_bound, eligible, d
        );
    }
    let mut schedules = 1u64;
    let mut counterexample =
        thm3_round_agreement(&out.history, cfg.stabilization).map(|detail| Counterexample {
            tape: Vec::new(),
            detail,
        });
    let mut tape = vec![false; d];
    while counterexample.is_none() && advance_tape(&mut tape) {
        schedules += 1;
        counterexample = check_tape(cfg, &tape).map(|detail| Counterexample {
            tape: tape.clone(),
            detail,
        });
    }
    Ok(DfsReport {
        schedules,
        decision_points: d,
        eligible_copies: eligible,
        clamped,
        counterexample,
    })
}

/// What an asynchronous dispatch-order exploration covered.
#[derive(Clone, Debug)]
pub struct AsyncDfsReport {
    /// Complete dispatch orders executed (oracle evaluated on each).
    pub schedules: u64,
    /// Runs cut short by the sleep set (partial-order reduction only):
    /// their continuations permute commuting dispatches of runs counted in
    /// `schedules`, so the oracle was skipped.
    pub pruned: u64,
    /// First violation: the choice stack (chosen indices, dispatch order)
    /// and the oracle's detail line.
    pub violation: Option<(Vec<usize>, String)>,
}

/// Exhaustively enumerates dispatch orders of an asynchronous system
/// within `max_steps` events per run, rebuilding the processes fresh for
/// each schedule via `mk` and checking the final process states with
/// `oracle`. Stops at the first violation.
///
/// The schedule tree has branching factor = pending-queue size, so keep
/// `max_steps` small (≤ ~8 for systems that re-arm timers).
pub fn explore_async<P, F>(
    mk: F,
    cfg: &AsyncConfig,
    horizon: Time,
    max_steps: usize,
    oracle: impl FnMut(&[P]) -> Verdict,
) -> AsyncDfsReport
where
    P: AsyncProcess,
    F: Fn() -> Vec<P>,
{
    explore_async_impl(mk, cfg, horizon, max_steps, false, oracle)
}

/// [`explore_async`] with sleep-set partial-order reduction: dispatch
/// orders that differ only in the interleaving of *commuting* deliveries
/// (different destination processes, so neither's handler can observe the
/// order) are explored once. Pruned runs end mid-flight and skip the
/// oracle — every complete interleaving they abbreviate has a complete
/// representative elsewhere in the tree — so the verdict is identical to
/// the full enumeration while `schedules` drops combinatorially.
pub fn explore_async_por<P, F>(
    mk: F,
    cfg: &AsyncConfig,
    horizon: Time,
    max_steps: usize,
    oracle: impl FnMut(&[P]) -> Verdict,
) -> AsyncDfsReport
where
    P: AsyncProcess,
    F: Fn() -> Vec<P>,
{
    explore_async_impl(mk, cfg, horizon, max_steps, true, oracle)
}

fn explore_async_impl<P, F>(
    mk: F,
    cfg: &AsyncConfig,
    horizon: Time,
    max_steps: usize,
    por: bool,
    mut oracle: impl FnMut(&[P]) -> Verdict,
) -> AsyncDfsReport
where
    P: AsyncProcess,
    F: Fn() -> Vec<P>,
{
    let mut sched: DfsScheduler<P::Msg> = DfsScheduler::new(max_steps);
    if por {
        sched = sched.with_por();
    }
    let mut schedules = 0u64;
    let mut pruned = 0u64;
    loop {
        let mut runner = AsyncRunner::with_scheduler(mk(), cfg.clone(), sched)
            .expect("valid async check configuration");
        runner.run_until(horizon);
        let verdict = {
            let was_pruned = runner.scheduler().was_pruned();
            if was_pruned {
                pruned += 1;
                None
            } else {
                schedules += 1;
                oracle(runner.processes())
            }
        };
        sched = runner.into_scheduler();
        if let Some(detail) = verdict {
            let choices = sched.choices().iter().map(|&(c, _)| c).collect();
            return AsyncDfsReport {
                schedules,
                pruned,
                violation: Some((choices, detail)),
            };
        }
        if !sched.advance() {
            return AsyncDfsReport {
                schedules,
                pruned,
                violation: None,
            };
        }
    }
}

/// The canonical dispatch-order demonstration behind `ftss-lab check
/// --dfs --por`: two processes gossip their values (3 and 7) and must
/// converge on the maximum. Four deliveries make `4! = 24` complete
/// dispatch orders; with sleep-set POR, interleavings of commuting
/// deliveries (different destinations, so no handler can observe the
/// order) collapse to a handful of representatives. Returns the full
/// enumeration and the reduced one — identical verdicts by construction,
/// so the pair doubles as an end-to-end soundness check of the pruning.
pub fn explore_gossip_por() -> (AsyncDfsReport, AsyncDfsReport) {
    use ftss::async_sim::Ctx;

    struct Gossip {
        v: u64,
    }
    impl AsyncProcess for Gossip {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            ctx.broadcast(self.v);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<u64>, _from: ProcessId, m: u64) {
            self.v = self.v.max(m);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<u64>, _tag: u64) {}
    }

    let mk = || vec![Gossip { v: 3 }, Gossip { v: 7 }];
    let cfg = AsyncConfig::tame(0);
    let oracle = |ps: &[Gossip]| {
        if ps.iter().all(|p| p.v == 7) {
            None
        } else {
            Some("max did not propagate".to_string())
        }
    };
    let full = explore_async(mk, &cfg, 1_000, 8, oracle);
    let por = explore_async_por(mk, &cfg, 1_000, 8, oracle);
    (full, por)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_tape_counts_in_binary() {
        let mut t = vec![false; 3];
        let mut seen = vec![t.clone()];
        while advance_tape(&mut t) {
            seen.push(t.clone());
        }
        assert_eq!(seen.len(), 8);
        seen.dedup();
        assert_eq!(seen.len(), 8, "no schedule visited twice");
    }

    #[test]
    fn validation_rejects_large_n_and_huge_bounds() {
        let mut cfg = DfsConfig::small(0);
        cfg.n = 5;
        assert!(explore(&cfg).is_err());
        let mut cfg = DfsConfig::small(0);
        cfg.tape_bound = MAX_TAPE_BOUND + 1;
        assert!(explore(&cfg).is_err());
    }

    /// Two processes gossip their values (each broadcast lands on both,
    /// self included): 4 independent deliveries, so the async DFS must
    /// visit exactly 4! = 24 dispatch orders — and max-convergence holds
    /// in all of them, while a false oracle trips on the very first.
    #[test]
    fn async_dfs_enumerates_all_dispatch_orders() {
        use ftss::async_sim::Ctx;

        struct Gossip {
            v: u64,
        }
        impl AsyncProcess for Gossip {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Ctx<u64>) {
                ctx.broadcast(self.v);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<u64>, _from: ProcessId, m: u64) {
                self.v = self.v.max(m);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<u64>, _tag: u64) {}
        }

        let mk = || vec![Gossip { v: 3 }, Gossip { v: 7 }];
        let cfg = AsyncConfig::tame(0);
        let report = explore_async(mk, &cfg, 1_000, 8, |ps: &[Gossip]| {
            if ps.iter().all(|p| p.v == 7) {
                None
            } else {
                Some("max did not propagate".into())
            }
        });
        assert_eq!(report.schedules, 24, "4! dispatch orders");
        assert!(report.violation.is_none());

        let broken = explore_async(mk, &cfg, 1_000, 8, |_: &[Gossip]| {
            Some("always wrong".into())
        });
        assert_eq!(broken.schedules, 1, "stops at the first violation");
        let (choices, detail) = broken.violation.expect("must trip");
        assert_eq!(choices.len(), 4, "one choice per dispatched event");
        assert_eq!(detail, "always wrong");
    }

    /// Sleep-set reduction on the gossip system: deliveries to different
    /// processes commute, so POR completes a strict subset of the 24
    /// orders — at least the 4 dependency classes (2 orders per
    /// destination's pair of incoming messages) — with the same verdict.
    #[test]
    fn async_por_prunes_commuting_orders_with_the_same_verdict() {
        use ftss::async_sim::Ctx;

        struct Gossip {
            v: u64,
        }
        impl AsyncProcess for Gossip {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Ctx<u64>) {
                ctx.broadcast(self.v);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<u64>, _from: ProcessId, m: u64) {
                self.v = self.v.max(m);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<u64>, _tag: u64) {}
        }

        let mk = || vec![Gossip { v: 3 }, Gossip { v: 7 }];
        let cfg = AsyncConfig::tame(0);
        let oracle = |ps: &[Gossip]| {
            if ps.iter().all(|p| p.v == 7) {
                None
            } else {
                Some("max did not propagate".to_string())
            }
        };
        let full = explore_async(mk, &cfg, 1_000, 8, oracle);
        let por = explore_async_por(mk, &cfg, 1_000, 8, oracle);
        assert_eq!(full.schedules, 24, "4! dispatch orders");
        assert_eq!(full.pruned, 0, "no pruning without POR");
        assert!(
            por.schedules < full.schedules,
            "POR must prune: {} complete orders",
            por.schedules
        );
        assert!(
            por.schedules >= 4,
            "every dependency class keeps a representative: {}",
            por.schedules
        );
        assert!(por.pruned > 0, "pruned stubs are counted");
        assert!(full.violation.is_none() && por.violation.is_none());
    }

    /// The clamp boundary: bound == eligible is full coverage (no flag),
    /// one less trips the clamp and halves the space.
    #[test]
    fn clamp_is_flagged_exactly_when_bound_is_short() {
        // n = 2, faulty p0, 2 rounds: eligible = 2 copies/round = 4.
        let cfg = DfsConfig {
            n: 2,
            rounds: 2,
            corruption_seed: 3,
            faulty: ProcessId(0),
            tape_bound: 4,
            stabilization: 1,
        };
        let exact = explore(&cfg).unwrap();
        assert_eq!(exact.eligible_copies, 4);
        assert_eq!(exact.decision_points, 4);
        assert!(!exact.clamped, "bound == eligible is not a clamp");

        let short = explore(&DfsConfig {
            tape_bound: 3,
            ..cfg
        })
        .unwrap();
        assert!(short.clamped);
        assert_eq!(short.decision_points, 3);
        assert_eq!(short.schedules, 8, "2^3 of the 2^4 schedules");
    }

    #[test]
    fn probe_measures_eligible_copies() {
        // n = 3, faulty p0: per round the copies touching p0 are
        // p0→p1, p0→p2, p1→p0, p2→p0 — 4 per round.
        let cfg = DfsConfig::small(7);
        let (_, eligible) = run_tape(&cfg, &[], &mut ftss::telemetry::NullSink);
        assert_eq!(eligible, 4 * cfg.rounds);
    }
}
