//! Micro-benchmarks of the harness itself: simulator round throughput,
//! coterie computation, and the Definition-2.4 checker, on the in-repo
//! timer harness (`ftss_bench::harness`). These gate nothing in the
//! paper; they document what experiment sizes are practical.

use ftss::core::{ftss_check, CoterieTimeline, Payload, RateAgreementSpec};
use ftss::protocols::RoundAgreement;
use ftss::sync_sim::{NoFaults, RunConfig, SyncRunner};
use ftss::telemetry::{NullSink, RecordingSink};
use ftss_bench::harness::{black_box, Bencher};
use ftss_sweep::e1_table;

fn main() {
    // BENCH_QUICK=1 trades precision for runtime (CI smoke budget).
    let mut b = if std::env::var_os("BENCH_QUICK").is_some() {
        Bencher::quick()
    } else {
        Bencher::new()
    };

    for n in [8usize, 32, 64] {
        b.bench(&format!("sync_sim_round_agreement/rounds20/{n}"), || {
            SyncRunner::new(RoundAgreement)
                .run(&mut NoFaults, &RunConfig::corrupted(n, 20, 7))
                .unwrap()
        });
    }

    // Telemetry overhead guard. `run()` *is* `run_traced(&mut NullSink)`
    // by construction, so the first two rows must agree within noise —
    // any gap means the disabled-sink path stopped compiling out. The
    // recording row documents the price of actually capturing events.
    let cfg = RunConfig::corrupted(32, 20, 7);
    b.bench("trace_overhead/untraced_n32_r20", || {
        SyncRunner::new(RoundAgreement)
            .run(&mut NoFaults, &cfg)
            .unwrap()
    });
    b.bench("trace_overhead/null_sink_n32_r20", || {
        SyncRunner::new(RoundAgreement)
            .run_traced(&mut NoFaults, &cfg, &mut NullSink)
            .unwrap()
    });
    b.bench("trace_overhead/recording_sink_n32_r20", || {
        let mut sink = RecordingSink::new(1 << 16);
        SyncRunner::new(RoundAgreement)
            .run_traced(&mut NoFaults, &cfg, &mut sink)
            .unwrap();
        sink.total_emitted()
    });

    let out = SyncRunner::new(RoundAgreement)
        .run(&mut NoFaults, &RunConfig::corrupted(32, 40, 7))
        .unwrap();
    b.bench("coterie_timeline_n32_r40", || {
        CoterieTimeline::compute(&out.history)
    });

    let out = SyncRunner::new(RoundAgreement)
        .run(&mut NoFaults, &RunConfig::corrupted(8, 30, 7))
        .unwrap();
    b.bench("ftss_check_exhaustive_n8_r30", || {
        ftss_check(&out.history, &RateAgreementSpec::new(), 1)
    });

    // The cost one broadcast pays to fan a message out to n=64 receivers:
    // deep-cloning the message per receiver (what the runners did before
    // `Payload`) vs. sharing one `Payload` (what they do now). The message
    // is FloodSet's real `Msg` type with a full seen-set — a `BTreeSet`
    // clone allocates per node, which is exactly the cost the sharing
    // refactor deletes. The shared row must be ≥5× cheaper.
    let msg: std::collections::BTreeSet<u64> = (0..64).collect();
    let clone_ns = b
        .bench("payload/share_vs_clone/clone_n64", || {
            let fanout: Vec<std::collections::BTreeSet<u64>> =
                (0..64).map(|_| black_box(&msg).clone()).collect();
            fanout
        })
        .median_ns;
    let share_ns = b
        .bench("payload/share_vs_clone/share_n64", || {
            let payload = Payload::new(black_box(&msg).clone());
            let fanout: Vec<Payload<std::collections::BTreeSet<u64>>> =
                (0..64).map(|_| payload.clone()).collect();
            fanout
        })
        .median_ns;
    println!(
        "payload/share_vs_clone: shared broadcast is {:.1}x cheaper at n=64",
        clone_ns / share_ns
    );

    // The sweep executor on a small E1 grid, serial vs. 4 workers. On a
    // multi-core host the jobs4 row should be faster; on a 1-core runner
    // the rows only document the (small) scheduling overhead. Output is
    // byte-identical either way — that is tested, not benched.
    b.bench("sweep/serial_vs_par/e1_small_jobs1", || e1_table(2, 8, 1));
    b.bench("sweep/serial_vs_par/e1_small_jobs4", || e1_table(2, 8, 4));

    b.finish();
    let report = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_micro.json".to_string());
    b.write_json(&report).expect("write bench report");
    println!("\nwrote {report}");
}
