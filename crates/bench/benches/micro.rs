//! Criterion micro-benchmarks of the harness itself: simulator round
//! throughput, coterie computation, and the Definition-2.4 checker. These
//! gate nothing in the paper; they document what experiment sizes are
//! practical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftss::core::{ftss_check, CoterieTimeline, RateAgreementSpec};
use ftss::protocols::RoundAgreement;
use ftss::sync_sim::{NoFaults, RunConfig, SyncRunner};

fn bench_sync_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync_sim_round_agreement");
    for n in [8usize, 32, 64] {
        g.bench_with_input(BenchmarkId::new("rounds20", n), &n, |b, &n| {
            b.iter(|| {
                SyncRunner::new(RoundAgreement)
                    .run(&mut NoFaults, &RunConfig::corrupted(n, 20, 7))
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_coterie(c: &mut Criterion) {
    let out = SyncRunner::new(RoundAgreement)
        .run(&mut NoFaults, &RunConfig::corrupted(32, 40, 7))
        .unwrap();
    c.bench_function("coterie_timeline_n32_r40", |b| {
        b.iter(|| CoterieTimeline::compute(&out.history))
    });
}

fn bench_ftss_check(c: &mut Criterion) {
    let out = SyncRunner::new(RoundAgreement)
        .run(&mut NoFaults, &RunConfig::corrupted(8, 30, 7))
        .unwrap();
    c.bench_function("ftss_check_exhaustive_n8_r30", |b| {
        b.iter(|| ftss_check(&out.history, &RateAgreementSpec::new(), 1))
    });
}

criterion_group!(benches, bench_sync_rounds, bench_coterie, bench_ftss_check);
criterion_main!(benches);
