//! Micro-benchmarks of the harness itself: simulator round throughput,
//! coterie computation, and the Definition-2.4 checker, on the in-repo
//! timer harness (`ftss_bench::harness`). These gate nothing in the
//! paper; they document what experiment sizes are practical.

use ftss::core::{ftss_check, CoterieTimeline, RateAgreementSpec};
use ftss::protocols::RoundAgreement;
use ftss::sync_sim::{NoFaults, RunConfig, SyncRunner};
use ftss::telemetry::{NullSink, RecordingSink};
use ftss_bench::harness::Bencher;

fn main() {
    let mut b = Bencher::new();

    for n in [8usize, 32, 64] {
        b.bench(&format!("sync_sim_round_agreement/rounds20/{n}"), || {
            SyncRunner::new(RoundAgreement)
                .run(&mut NoFaults, &RunConfig::corrupted(n, 20, 7))
                .unwrap()
        });
    }

    // Telemetry overhead guard. `run()` *is* `run_traced(&mut NullSink)`
    // by construction, so the first two rows must agree within noise —
    // any gap means the disabled-sink path stopped compiling out. The
    // recording row documents the price of actually capturing events.
    let cfg = RunConfig::corrupted(32, 20, 7);
    b.bench("trace_overhead/untraced_n32_r20", || {
        SyncRunner::new(RoundAgreement)
            .run(&mut NoFaults, &cfg)
            .unwrap()
    });
    b.bench("trace_overhead/null_sink_n32_r20", || {
        SyncRunner::new(RoundAgreement)
            .run_traced(&mut NoFaults, &cfg, &mut NullSink)
            .unwrap()
    });
    b.bench("trace_overhead/recording_sink_n32_r20", || {
        let mut sink = RecordingSink::new(1 << 16);
        SyncRunner::new(RoundAgreement)
            .run_traced(&mut NoFaults, &cfg, &mut sink)
            .unwrap();
        sink.total_emitted()
    });

    let out = SyncRunner::new(RoundAgreement)
        .run(&mut NoFaults, &RunConfig::corrupted(32, 40, 7))
        .unwrap();
    b.bench("coterie_timeline_n32_r40", || {
        CoterieTimeline::compute(&out.history)
    });

    let out = SyncRunner::new(RoundAgreement)
        .run(&mut NoFaults, &RunConfig::corrupted(8, 30, 7))
        .unwrap();
    b.bench("ftss_check_exhaustive_n8_r30", || {
        ftss_check(&out.history, &RateAgreementSpec::new(), 1)
    });

    b.finish();
}
