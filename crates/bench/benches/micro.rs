//! Micro-benchmarks of the harness itself: simulator round throughput,
//! coterie computation, and the Definition-2.4 checker, on the in-repo
//! timer harness (`ftss_bench::harness`). These gate nothing in the
//! paper; they document what experiment sizes are practical.

use ftss::core::{
    ftss_check, CoterieTimeline, DeliveryOutcome, Envelope, Payload, ProcessId, ProcessRoundRecord,
    RateAgreementSpec, Round, RoundCounter, RoundHistory, SendRecord,
};
use ftss::protocols::RoundAgreement;
use ftss::sync_sim::{NoFaults, RunConfig, SyncRunner};
use ftss::telemetry::{NullSink, RecordingSink};
use ftss_bench::harness::{black_box, Bencher};
use ftss_sweep::e1_table;

/// Fills one struct-of-arrays round frame with a full n×n mesh: the
/// recording work the new engine does per round (bit flips into the
/// sent/delivered matrices, one shared payload slot per sender), on a
/// recycled frame.
fn fill_soa_frame(frame: &mut RoundHistory<u64, u64>, n: usize) -> usize {
    frame.reset(n);
    for p in 0..n {
        frame.set_process(
            ProcessId(p),
            Some(p as u64),
            Some(RoundCounter::new(1)),
            false,
            false,
        );
        frame.set_broadcast(ProcessId(p), Payload::new(p as u64));
    }
    for src in 0..n {
        for dst in 0..n {
            frame.record_send(ProcessId(src), ProcessId(dst), DeliveryOutcome::Delivered);
            frame.record_delivery(ProcessId(dst), ProcessId(src));
        }
    }
    frame.msgs().sent_count(ProcessId(0))
}

/// The same full mesh recorded the way the engine did before the
/// struct-of-arrays refactor: one `ProcessRoundRecord` per process, a
/// `SendRecord` push (with its shared-payload clone) per copy, and an
/// `Envelope` push per delivery — O(n) vectors allocated and O(n²)
/// 24-byte records written per round.
fn fill_aos_round(n: usize) -> RoundHistory<u64, u64> {
    let payloads: Vec<Payload<u64>> = (0..n).map(|p| Payload::new(p as u64)).collect();
    let records: Vec<ProcessRoundRecord<u64, u64>> = (0..n)
        .map(|p| {
            let sent: Vec<SendRecord<u64>> = (0..n)
                .map(|dst| SendRecord {
                    dst: ProcessId(dst),
                    payload: payloads[p].clone(),
                    outcome: DeliveryOutcome::Delivered,
                })
                .collect();
            let delivered: Vec<Envelope<u64>> = (0..n)
                .map(|src| Envelope {
                    src: ProcessId(src),
                    sent_in: Round::FIRST,
                    payload: payloads[src].clone(),
                })
                .collect();
            ProcessRoundRecord {
                state_at_start: Some(p as u64),
                counter_at_start: Some(RoundCounter::new(1)),
                sent,
                delivered,
                crashed_here: false,
                halted_at_start: false,
            }
        })
        .collect();
    RoundHistory::from_records(records)
}

fn main() {
    // BENCH_QUICK=1 trades precision for runtime (CI smoke budget).
    let mut b = if std::env::var_os("BENCH_QUICK").is_some() {
        Bencher::quick()
    } else {
        Bencher::new()
    };

    for n in [8usize, 32, 64] {
        b.bench(&format!("sync_sim_round_agreement/rounds20/{n}"), || {
            SyncRunner::new(RoundAgreement)
                .run(&mut NoFaults, &RunConfig::corrupted(n, 20, 7))
                .unwrap()
        });
    }

    // The struct-of-arrays recording layer vs. the pre-refactor
    // array-of-structs representation, filling one full-mesh round. The
    // SoA fill must be ≥10× cheaper at n=256 — this is the gate behind
    // the large-n engine (DESIGN.md §12). End-to-end run rows (below and
    // `sync_sim_round_agreement/*`) include protocol stepping and
    // adversary consultation, so their ratio is smaller; the gate is on
    // the representation itself.
    let mut frame: RoundHistory<u64, u64> = RoundHistory::empty(256);
    let mut soa256 = 0.0;
    for n in [64usize, 256, 1024] {
        let s = b
            .bench(&format!("engine/round_throughput/n{n}"), || {
                fill_soa_frame(black_box(&mut frame), n)
            })
            .median_ns;
        if n == 256 {
            soa256 = s;
        }
    }
    let aos256 = b
        .bench("engine/round_throughput_legacy/n256", || {
            fill_aos_round(256)
        })
        .median_ns;
    let ratio = aos256 / soa256;
    println!("engine/round_throughput: SoA frame fill is {ratio:.1}x cheaper at n=256");
    assert!(
        ratio >= 10.0,
        "engine/round_throughput gate: SoA fill must be ≥10× cheaper than the \
         legacy AoS representation at n=256, measured {ratio:.1}x"
    );

    // End-to-end large-n rounds: the full runner (protocol + adversary +
    // recording) on a 12-round window at sweep/soak sizes.
    for n in [256usize, 1024] {
        b.bench(&format!("engine/end_to_end/n{n}_r12_w12"), || {
            SyncRunner::new(RoundAgreement)
                .run(
                    &mut NoFaults,
                    &RunConfig::corrupted(n, 12, 7).with_history_window(12),
                )
                .unwrap()
        });
    }

    // Telemetry overhead guard. `run()` *is* `run_traced(&mut NullSink)`
    // by construction, so the first two rows must agree within noise —
    // any gap means the disabled-sink path stopped compiling out. The
    // recording row documents the price of actually capturing events.
    let cfg = RunConfig::corrupted(32, 20, 7);
    b.bench("trace_overhead/untraced_n32_r20", || {
        SyncRunner::new(RoundAgreement)
            .run(&mut NoFaults, &cfg)
            .unwrap()
    });
    b.bench("trace_overhead/null_sink_n32_r20", || {
        SyncRunner::new(RoundAgreement)
            .run_traced(&mut NoFaults, &cfg, &mut NullSink)
            .unwrap()
    });
    b.bench("trace_overhead/recording_sink_n32_r20", || {
        let mut sink = RecordingSink::new(1 << 16);
        SyncRunner::new(RoundAgreement)
            .run_traced(&mut NoFaults, &cfg, &mut sink)
            .unwrap();
        sink.total_emitted()
    });

    let out = SyncRunner::new(RoundAgreement)
        .run(&mut NoFaults, &RunConfig::corrupted(32, 40, 7))
        .unwrap();
    b.bench("coterie_timeline_n32_r40", || {
        CoterieTimeline::compute(&out.history)
    });

    let out = SyncRunner::new(RoundAgreement)
        .run(&mut NoFaults, &RunConfig::corrupted(8, 30, 7))
        .unwrap();
    b.bench("ftss_check_exhaustive_n8_r30", || {
        ftss_check(&out.history, &RateAgreementSpec::new(), 1)
    });

    // The cost one broadcast pays to fan a message out to n=64 receivers:
    // deep-cloning the message per receiver (what the runners did before
    // `Payload`) vs. sharing one `Payload` (what they do now). The message
    // is FloodSet's real `Msg` type with a full seen-set — a `BTreeSet`
    // clone allocates per node, which is exactly the cost the sharing
    // refactor deletes. The shared row must be ≥5× cheaper.
    let msg: std::collections::BTreeSet<u64> = (0..64).collect();
    let clone_ns = b
        .bench("payload/share_vs_clone/clone_n64", || {
            let fanout: Vec<std::collections::BTreeSet<u64>> =
                (0..64).map(|_| black_box(&msg).clone()).collect();
            fanout
        })
        .median_ns;
    let share_ns = b
        .bench("payload/share_vs_clone/share_n64", || {
            let payload = Payload::new(black_box(&msg).clone());
            let fanout: Vec<Payload<std::collections::BTreeSet<u64>>> =
                (0..64).map(|_| payload.clone()).collect();
            fanout
        })
        .median_ns;
    println!(
        "payload/share_vs_clone: shared broadcast is {:.1}x cheaper at n=64",
        clone_ns / share_ns
    );

    // Graph-mode model checking vs the legacy schedule-tree enumerator on
    // the pinned n=3, 3-round configuration. The comparable work unit is
    // *round executions*: the enumerator runs `schedules × rounds` of
    // them (every run replays its whole prefix), the graph explorer runs
    // one per expansion (each edge steps the simulator exactly one
    // round). The graph must do ≥10× less work for identical verdicts —
    // this is the gate behind the state-graph checker (DESIGN.md §14).
    let enum_cfg = {
        let mut c = ftss_check::DfsConfig::small(7);
        c.rounds = 3;
        c.tape_bound = 12;
        c
    };
    let enum_report = ftss_check::explore(&enum_cfg).unwrap();
    b.bench("check/graph_vs_enum/enum_n3_r3", || {
        ftss_check::explore(black_box(&enum_cfg)).unwrap()
    });
    let graph_cfg = {
        let mut c = ftss_check::GraphConfig::small(7);
        c.rounds = Some(3);
        c
    };
    let graph_report = ftss_check::explore_graph(&graph_cfg).unwrap();
    b.bench("check/graph_vs_enum/graph_n3_r3", || {
        ftss_check::explore_graph(black_box(&graph_cfg)).unwrap()
    });
    assert_eq!(
        enum_report.counterexample.is_some(),
        graph_report.counterexample.is_some(),
        "check/graph_vs_enum: the two checkers must agree on the verdict"
    );
    let enum_work = enum_report.schedules * enum_cfg.rounds as u64;
    let graph_work = graph_report.expansions;
    let work_ratio = enum_work as f64 / graph_work as f64;
    println!(
        "check/graph_vs_enum: graph does {work_ratio:.1}x less round-execution work \
         ({enum_work} enumerated vs {graph_work} expanded)"
    );
    assert!(
        work_ratio >= 10.0,
        "check/graph_vs_enum gate: the graph explorer must do ≥10× fewer \
         round executions than the enumerator at n=3/rounds=3, measured {work_ratio:.1}x"
    );

    // The sweep executor on a small E1 grid, serial vs. 4 workers. On a
    // multi-core host the jobs4 row should be faster; on a 1-core runner
    // the rows only document the (small) scheduling overhead. Output is
    // byte-identical either way — that is tested, not benched.
    b.bench("sweep/serial_vs_par/e1_small_jobs1", || e1_table(2, 8, 1));
    b.bench("sweep/serial_vs_par/e1_small_jobs4", || e1_table(2, 8, 4));

    b.finish();
    let report = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_micro.json".to_string());
    b.write_json(&report).expect("write bench report");
    println!("\nwrote {report}");
}
