//! E6 — §3: self-stabilizing asynchronous consensus vs plain
//! Chandra–Toueg, from clean and corrupted initial states.
//!
//! Metrics per configuration (over seeds):
//!
//! * **decided fraction** — runs in which every correct process reached a
//!   decision (plain CT) / progressed past the corrupted instance (SS)
//!   within the horizon;
//! * **agreement violations** — runs where two correct processes decided
//!   differently (same instance, for the SS protocol);
//! * **median decision time** — virtual time of the last correct
//!   process's (first fresh) decision.

use ftss::analysis::Table;
use ftss::async_sim::{AsyncConfig, AsyncRunner, Time};
use ftss::consensus_async::{CtConsensusProcess, SsConsensusProcess};
use ftss::core::{Corrupt, ProcessId};
use ftss::detectors::WeakOracle;
use ftss_rng::StdRng;

const SEEDS: u64 = 12;
const HORIZON: Time = 120_000;

struct Row {
    decided: usize,
    violations: usize,
    times: Vec<Time>,
}

fn fmt_median(times: &mut [Time]) -> String {
    if times.is_empty() {
        return "-".into();
    }
    times.sort_unstable();
    format!("{}", times[times.len() / 2])
}

fn run_ct(n: usize, crashes: &[(ProcessId, Time)], corrupt: bool) -> Row {
    let mut row = Row {
        decided: 0,
        violations: 0,
        times: Vec::new(),
    };
    for seed in 0..SEEDS {
        let inputs: Vec<u64> = (0..n as u64).map(|i| i * 10).collect();
        let oracle = WeakOracle::new(n, crashes.to_vec(), 300, seed, 0.2);
        let mut procs: Vec<CtConsensusProcess> = inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| CtConsensusProcess::new(ProcessId(i), n, v, oracle.clone(), 25))
            .collect();
        if corrupt {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xc7);
            for p in &mut procs {
                p.corrupt(&mut rng);
            }
        }
        let mut cfg = AsyncConfig::turbulent(seed, 50, 300);
        for &(p, t) in crashes {
            cfg = cfg.with_crash(p, t);
        }
        let mut runner = AsyncRunner::new(procs, cfg).expect("valid config");
        let correct: Vec<usize> = (0..n)
            .filter(|&i| !crashes.iter().any(|&(p, _)| p.index() == i))
            .collect();
        let correct2 = correct.clone();
        let mut all_decided_at: Option<Time> = None;
        runner.run_probed(HORIZON, 250, |t, ps| {
            if all_decided_at.is_none() && correct2.iter().all(|&i| ps[i].decision().is_some()) {
                all_decided_at = Some(t);
            }
        });
        let decisions: Vec<Option<u64>> = correct
            .iter()
            .map(|&i| runner.process(ProcessId(i)).decision())
            .collect();
        if decisions.iter().all(|d| d.is_some()) {
            row.decided += 1;
            row.times.push(all_decided_at.unwrap_or(HORIZON));
            let vals: std::collections::BTreeSet<u64> =
                decisions.iter().map(|d| d.unwrap()).collect();
            if vals.len() > 1 {
                row.violations += 1;
            }
        }
    }
    row
}

fn run_ss(n: usize, crashes: &[(ProcessId, Time)], corrupt: bool) -> Row {
    let mut row = Row {
        decided: 0,
        violations: 0,
        times: Vec::new(),
    };
    for seed in 0..SEEDS {
        let inputs: Vec<u64> = (0..n as u64).map(|i| i * 10).collect();
        let oracle = WeakOracle::new(n, crashes.to_vec(), 300, seed, 0.2);
        let mut procs: Vec<SsConsensusProcess> = (0..n)
            .map(|i| SsConsensusProcess::new(ProcessId(i), inputs.clone(), oracle.clone(), 25, 40))
            .collect();
        let mut corrupted_max = 0;
        if corrupt {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xc7);
            for p in &mut procs {
                p.corrupt(&mut rng);
            }
            corrupted_max = procs.iter().map(|p| p.inst).max().unwrap();
        }
        let mut cfg = AsyncConfig::turbulent(seed, 50, 300);
        for &(p, t) in crashes {
            cfg = cfg.with_crash(p, t);
        }
        let mut runner = AsyncRunner::new(procs, cfg).expect("valid config");

        // Probe to catch the first post-corruption decision time and check
        // per-instance agreement.
        let mut first_fresh: Option<Time> = None;
        let mut per_instance: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>> =
            Default::default();
        let correct: Vec<usize> = (0..n)
            .filter(|&i| !crashes.iter().any(|&(p, _)| p.index() == i))
            .collect();
        let correct2 = correct.clone();
        runner.run_probed(HORIZON, 250, |t, ps| {
            let mut all_fresh = true;
            for &i in &correct2 {
                match ps[i].last_decision() {
                    Some((inst, v)) if inst > corrupted_max => {
                        per_instance.entry(inst).or_default().insert(v);
                    }
                    _ => all_fresh = false,
                }
            }
            if all_fresh && first_fresh.is_none() {
                first_fresh = Some(t);
            }
        });
        if let Some(t) = first_fresh {
            row.decided += 1;
            row.times.push(t);
        }
        if per_instance.values().any(|vals| vals.len() > 1) {
            row.violations += 1;
        }
    }
    row
}

fn main() {
    println!("\nE6: asynchronous consensus — plain CT vs the paper's self-stabilizing");
    println!("protocol; {SEEDS} seeds per row, horizon t={HORIZON}, GST t=300\n");

    let mut t = Table::new(vec![
        "protocol",
        "n",
        "crashes",
        "init",
        "decided",
        "agreement violations",
        "median decide t",
    ]);

    for (n, crashes) in [
        (3usize, vec![]),
        (5, vec![]),
        (5, vec![(ProcessId(2), 5_000u64)]),
        (9, vec![(ProcessId(0), 2_000), (ProcessId(4), 8_000)]),
    ] {
        let crash_label = if crashes.is_empty() {
            "none".to_string()
        } else {
            format!("{}", crashes.len())
        };
        for corrupt in [false, true] {
            let init = if corrupt { "corrupted" } else { "clean" };
            let mut ct = run_ct(n, &crashes, corrupt);
            t.row(vec![
                "plain CT".into(),
                n.to_string(),
                crash_label.clone(),
                init.into(),
                format!("{}/{SEEDS}", ct.decided),
                ct.violations.to_string(),
                fmt_median(&mut ct.times),
            ]);
            let mut ss = run_ss(n, &crashes, corrupt);
            t.row(vec![
                "self-stabilizing".into(),
                n.to_string(),
                crash_label.clone(),
                init.into(),
                format!("{}/{SEEDS}", ss.decided),
                ss.violations.to_string(),
                fmt_median(&mut ss.times),
            ]);
        }
    }
    print!("{t}");
    println!("\nExpected shape: both decide from clean states; from corrupted states");
    println!("plain CT mostly deadlocks (or decides corrupted garbage) while the");
    println!("self-stabilizing protocol keeps completing instances with agreement.");
}
