//! E1 — Figure 1 / Theorem 3: round agreement stabilizes in ≤ 1 round.
//!
//! For each system size `n` and fault mix, run the round-agreement
//! protocol from seeded arbitrary corruption and measure the empirical
//! stabilization time on the final coterie-stable window. The paper claims
//! a stabilization time of exactly **1 round**; the table reports the mean
//! and max measured over seeds (0 can occur when the corrupted counters
//! happen to already agree).

use ftss::analysis::{measured_stabilization_time, Table};
use ftss::core::{ProcessId, RateAgreementSpec};
use ftss::protocols::RoundAgreement;
use ftss::sync_sim::{Adversary, NoFaults, RandomOmission, RunConfig, SilentProcess, SyncRunner};
use ftss_bench::{max, mean};

const SEEDS: u64 = 30;
const ROUNDS: usize = 24;

fn measure(
    n: usize,
    adversary_for: &dyn Fn(u64) -> Box<dyn Adversary>,
    label: &str,
    t: &mut Table,
) {
    let mut measured = Vec::new();
    let mut window_starts = Vec::new();
    for seed in 0..SEEDS {
        let mut adv = adversary_for(seed);
        let out = SyncRunner::new(RoundAgreement)
            .run(
                adv.as_mut(),
                &RunConfig::corrupted(n, ROUNDS, seed.wrapping_mul(0x9e37) ^ n as u64),
            )
            .expect("valid config");
        let m = measured_stabilization_time(&out.history, &RateAgreementSpec::new())
            .expect("non-empty run");
        measured.push(m.stabilization_rounds.expect("must stabilize"));
        window_starts.push(m.window_start);
    }
    t.row(vec![
        n.to_string(),
        label.into(),
        mean(&measured),
        max(&measured),
        "1".into(),
        if measured.iter().all(|&s| s <= 1) {
            "yes"
        } else {
            "NO"
        }
        .into(),
    ]);
}

fn main() {
    println!("\nE1: round agreement (Fig 1) — stabilization time, {SEEDS} seeds per row");
    println!("claim (Thm 3): ftss-stabilization time = 1 round\n");

    let mut t = Table::new(vec![
        "n",
        "faults",
        "mean stab",
        "max stab",
        "claimed",
        "within",
    ]);
    for n in [2usize, 4, 8, 16, 32, 64] {
        measure(n, &|_| Box::new(NoFaults), "none", &mut t);
    }
    for n in [4usize, 8, 16, 32] {
        measure(
            n,
            &|seed| Box::new(RandomOmission::new([ProcessId(0)], 0.5, seed)),
            "1 omitter p=0.5",
            &mut t,
        );
        let f = (n - 1) / 3;
        measure(
            n,
            &|seed| {
                Box::new(RandomOmission::new(
                    (0..f).map(ProcessId).collect::<Vec<_>>(),
                    0.3,
                    seed,
                ))
            },
            "f=(n-1)/3 omitters p=0.3",
            &mut t,
        );
    }
    // The Theorem-3 proof scenario: a silent process revealing late.
    for n in [3usize, 8] {
        measure(
            n,
            &|_| Box::new(SilentProcess::new(ProcessId(0), 6)),
            "silent 6 rounds",
            &mut t,
        );
    }
    print!("{t}");
    println!("\n(measured on the final coterie-stable window of each run)");
}
