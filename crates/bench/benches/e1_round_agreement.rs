//! E1 — Figure 1 / Theorem 3: round agreement stabilizes in ≤ 1 round.
//!
//! For each system size `n` and fault mix, run the round-agreement
//! protocol from seeded arbitrary corruption and measure the empirical
//! stabilization time on the final coterie-stable window. The paper claims
//! a stabilization time of exactly **1 round**; the table reports the mean
//! and max measured over seeds (0 can occur when the corrupted counters
//! happen to already agree).
//!
//! The sweep itself lives in `ftss_sweep::e1_table`, shared with
//! `ftss-lab sweep --exp e1`; this driver only prints the framing. Set
//! `FTSS_JOBS` to control the worker count — the table is byte-identical
//! for any value.

use ftss_sweep::{e1_table, jobs_from_env, E1_SEEDS};

fn main() {
    println!("\nE1: round agreement (Fig 1) — stabilization time, {E1_SEEDS} seeds per row");
    println!("claim (Thm 3): ftss-stabilization time = 1 round\n");
    print!("{}", e1_table(E1_SEEDS, usize::MAX, jobs_from_env()));
    println!("\n(measured on the final coterie-stable window of each run)");
}
