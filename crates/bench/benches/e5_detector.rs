//! E5 — Figure 4 / Theorem 5: the ◇W → ◇S transformation is
//! self-stabilizing; an initialization-dependent baseline is not.
//!
//! Both detectors run from (a) clean state, (b) seeded random corruption,
//! and (c) the adversarial "everyone believes everyone dead at version
//! 10⁹, nothing marked dirty" state, under a quiet ◇W. The table reports
//! virtual-time settle points of strong completeness and eventual weak
//! accuracy ("never" = not within the horizon — for the baseline under
//! (c), provably never).

use ftss::analysis::Table;
use ftss::async_sim::{AsyncConfig, AsyncRunner, Time};
use ftss::core::{Corrupt, ProcessId, ProcessSet};
use ftss::detectors::{
    eventual_weak_accuracy, strong_completeness_time, BaselineDetectorProcess, LifeState,
    StrongDetectorProcess, SuspectProbe, Suspector, WeakOracle,
};
use ftss_rng::StdRng;

const HORIZON: Time = 60_000;
const PROBE: Time = 200;
const POLL: Time = 20;

#[derive(Clone, Copy, PartialEq)]
enum Init {
    Clean,
    RandomCorrupt(u64),
    Poison,
}

impl Init {
    fn label(self) -> String {
        match self {
            Init::Clean => "clean".into(),
            Init::RandomCorrupt(s) => format!("random corrupt (seed {s})"),
            Init::Poison => "adversarial poison".into(),
        }
    }
}

fn poison_tables(num: &mut [u64], state: &mut [LifeState], me: usize) {
    for s in 0..num.len() {
        if s == me {
            num[s] = 0;
            state[s] = LifeState::Alive;
        } else {
            num[s] = 1_000_000_000;
            state[s] = LifeState::Dead;
        }
    }
}

fn run_detector<P, F>(
    n: usize,
    crash_t: Time,
    init: Init,
    build: F,
    poison: impl Fn(&mut P, usize),
    corrupt: impl Fn(&mut P, &mut StdRng),
) -> (Option<Time>, Option<Time>)
where
    P: ftss::async_sim::AsyncProcess + Suspector,
    P::Msg: Eq,
    F: Fn(ProcessId, WeakOracle) -> P,
{
    let crashes = vec![(ProcessId(n - 1), crash_t)];
    let oracle = WeakOracle::new(n, crashes.clone(), 0, 5, 0.0);
    let crashed = ProcessSet::from_iter_n(n, [ProcessId(n - 1)]);
    let correct = crashed.complement();
    let mut procs: Vec<P> = (0..n)
        .map(|i| build(ProcessId(i), oracle.clone()))
        .collect();
    match init {
        Init::Clean => {}
        Init::RandomCorrupt(seed) => {
            let mut rng = StdRng::seed_from_u64(seed);
            for p in &mut procs {
                corrupt(p, &mut rng);
            }
        }
        Init::Poison => {
            for (i, p) in procs.iter_mut().enumerate() {
                poison(p, i);
            }
        }
    }
    let mut cfg = AsyncConfig::tame(5);
    for (p, t) in crashes {
        cfg = cfg.with_crash(p, t);
    }
    let mut runner = AsyncRunner::new(procs, cfg).expect("valid config");
    let mut probes = Vec::new();
    runner.run_probed(HORIZON, PROBE, |t, ps| {
        probes.push(SuspectProbe::sample(t, ps))
    });
    (
        strong_completeness_time(&probes, &crashed, &correct),
        eventual_weak_accuracy(&probes, &correct).map(|(_, t)| t),
    )
}

fn settle(x: Option<Time>) -> String {
    x.map(|t| format!("t={t}"))
        .unwrap_or_else(|| "NEVER".into())
}

fn main() {
    println!("\nE5: ◇S detectors from ◇W — Figure 4 vs change-only baseline");
    println!("horizon t={HORIZON}, quiet ◇W, poll every {POLL}; crash of p(n-1) at t=500\n");

    let mut t = Table::new(vec![
        "detector",
        "n",
        "initial state",
        "strong completeness",
        "eventual weak accuracy",
    ]);

    for n in [3usize, 4, 8, 16] {
        for init in [Init::Clean, Init::RandomCorrupt(n as u64), Init::Poison] {
            let (c, a) = run_detector(
                n,
                500,
                init,
                |p, o| StrongDetectorProcess::new(p, o, POLL),
                |p, i| poison_tables(&mut p.num, &mut p.state, i),
                |p, rng| p.corrupt(rng),
            );
            t.row(vec![
                "Figure 4 (paper)".into(),
                n.to_string(),
                init.label(),
                settle(c),
                settle(a),
            ]);
            let (c, a) = run_detector(
                n,
                500,
                init,
                |p, o| BaselineDetectorProcess::new(p, o, POLL),
                |p, i| {
                    poison_tables(&mut p.num, &mut p.state, i);
                    for d in &mut p.dirty {
                        *d = false;
                    }
                },
                |p, rng| p.corrupt(rng),
            );
            t.row(vec![
                "baseline".into(),
                n.to_string(),
                init.label(),
                settle(c),
                settle(a),
            ]);
        }
    }
    print!("{t}");
    println!("\nFigure 4 settles both properties from every initial state (Thm 5);");
    println!("the baseline never regains accuracy from the adversarial state.");
}
