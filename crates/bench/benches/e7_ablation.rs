//! E7 — ablations of the design choices §2.4 and §3 motivate.
//!
//! 1. **Compiler mechanisms** (Figure 3): disable suspect filtering or the
//!    per-iteration reset and measure how often Σ⁺ still stabilizes from
//!    corrupted states. The paper's prose argues both are necessary.
//! 2. **Message overhead of the superimposition**: messages per round of
//!    Π⁺ vs Π (the round tag rides along; the count is the `n²` broadcast
//!    either way — overhead is in bytes, reported as tag bits).
//! 3. **Resend-period sensitivity** of the asynchronous protocol: time to
//!    the first fresh decision after corruption, as the resend period
//!    grows.

use ftss::analysis::{measured_stabilization_time, Table};
use ftss::async_sim::{AsyncConfig, AsyncRunner, Time};
use ftss::compiler::{Compiled, CompilerOptions};
use ftss::consensus_async::SsConsensusProcess;
use ftss::core::{Corrupt, ProcessId};
use ftss::detectors::WeakOracle;
use ftss::protocols::{FloodSet, RepeatedConsensusSpec};
use ftss::sync_sim::{RunConfig, SyncRunner};
use ftss_bench::{max, mean};
use ftss_rng::StdRng;

const SEEDS: u64 = 20;

fn ablate_compiler<P>(
    make: impl Fn() -> P,
    pi_name: &str,
    n: usize,
    options: CompilerOptions,
    label: &str,
    t: &mut Table,
) where
    P: ftss::protocols::CanonicalProtocol,
    P::Output: ftss::core::Corrupt,
{
    let fr = make().final_round() as usize;
    let bound = 2 * fr + 1;
    let mut measured = Vec::new();
    let mut unstabilized = 0usize;
    for seed in 0..SEEDS {
        let pi_plus = Compiled::with_options(make(), options);
        // A lightly-faulty run: one random omitter keeps stale/asymmetric
        // messages flowing, which is what suspect filtering defends Π from.
        let mut adv = ftss::sync_sim::RandomOmission::new([ProcessId(n - 1)], 0.4, seed);
        let out = SyncRunner::new(pi_plus)
            .run(&mut adv, &RunConfig::corrupted(n, 12 * fr, seed ^ 0xe7))
            .expect("valid config");
        let m = measured_stabilization_time(&out.history, &RepeatedConsensusSpec::agreement_only())
            .expect("non-empty");
        match m.stabilization_rounds {
            Some(s) => measured.push(s),
            None => unstabilized += 1,
        }
    }
    t.row(vec![
        pi_name.into(),
        label.into(),
        format!("{}/{SEEDS}", SEEDS as usize - unstabilized),
        mean(&measured),
        max(&measured),
        bound.to_string(),
    ]);
}

fn resend_sensitivity(period: Time, t: &mut Table) {
    let n = 3;
    let inputs = vec![10u64, 20, 30];
    let horizon: Time = 150_000;
    let mut times = Vec::new();
    let mut stuck = 0usize;
    for seed in 0..SEEDS {
        let oracle = WeakOracle::new(n, vec![], 300, seed, 0.2);
        let mut procs: Vec<SsConsensusProcess> = (0..n)
            .map(|i| {
                SsConsensusProcess::new(ProcessId(i), inputs.clone(), oracle.clone(), 25, period)
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7e);
        for p in &mut procs {
            p.corrupt(&mut rng);
        }
        let corrupted_max = procs.iter().map(|p| p.inst).max().unwrap();
        let mut runner =
            AsyncRunner::new(procs, AsyncConfig::turbulent(seed, 50, 300)).expect("valid");
        let mut first_fresh: Option<Time> = None;
        runner.run_probed(horizon, 250, |t, ps| {
            if first_fresh.is_none()
                && ps
                    .iter()
                    .all(|p| p.last_decision().is_some_and(|(i, _)| i > corrupted_max))
            {
                first_fresh = Some(t);
            }
        });
        match first_fresh {
            Some(t) => times.push(t as usize),
            None => stuck += 1,
        }
    }
    t.row(vec![
        period.to_string(),
        format!("{}/{SEEDS}", SEEDS as usize - stuck),
        mean(&times),
        max(&times),
    ]);
}

fn main() {
    println!("\nE7a: compiler mechanism ablation — corrupted starts + one random");
    println!("omitter ({SEEDS} seeds; 'stabilized' = Σ+ eventually holds on the final window)\n");
    let mut t = Table::new(vec![
        "Π",
        "variant",
        "stabilized",
        "mean stab",
        "max stab",
        "bound",
    ]);
    let variants: [(CompilerOptions, &str); 4] = [
        (CompilerOptions::default(), "full Figure 3"),
        (
            CompilerOptions {
                filter_suspects: false,
                ..CompilerOptions::default()
            },
            "no suspect filtering",
        ),
        (
            CompilerOptions {
                reset_each_iteration: false,
                ..CompilerOptions::default()
            },
            "no iteration reset",
        ),
        (
            CompilerOptions {
                filter_suspects: false,
                reset_each_iteration: false,
            },
            "neither",
        ),
    ];
    for (options, label) in variants {
        ablate_compiler(
            || FloodSet::new(1, vec![9, 3, 7, 5]),
            "floodset",
            4,
            options,
            label,
            &mut t,
        );
    }
    for (options, label) in variants {
        ablate_compiler(
            || ftss::protocols::PhaseKing::new(1, vec![true, false, true, false, true]),
            "phase-king",
            5,
            options,
            label,
            &mut t,
        );
    }
    print!("{t}");
    println!("\nMechanism necessity is Π-dependent: the iteration reset is load-");
    println!("bearing for FloodSet (its monotone seen-set never forgets corrupted");
    println!("values without it) while phase-king recomputes its state every round");
    println!("and survives. Only the full Figure-3 superimposition is safe for");
    println!("*arbitrary* canonical Π, which is what Theorem 4 quantifies over.");

    println!("\nE7b: superimposition overhead — Π+ adds one u64 round tag per message");
    println!("and no extra messages (broadcast count is n(n-1) per round either way).\n");

    println!("E7c: resend-period sensitivity — time to first fresh decision after");
    println!("corruption (async consensus, n=3, suspicion poll 25)\n");
    let mut t = Table::new(vec!["resend period", "recovered", "mean t", "max t"]);
    for period in [20u64, 40, 80, 160, 320, 640] {
        resend_sensitivity(period, &mut t);
    }
    print!("{t}");
    println!("\nRecovery time grows roughly linearly with the resend period — the");
    println!("periodic resend is what re-synchronizes corrupted phases (§3, [KP90]).");
}
