//! E7 — ablations of the design choices §2.4 and §3 motivate.
//!
//! 1. **Compiler mechanisms** (Figure 3): disable suspect filtering or the
//!    per-iteration reset and measure how often Σ⁺ still stabilizes from
//!    corrupted states. The paper's prose argues both are necessary.
//! 2. **Message overhead of the superimposition**: messages per round of
//!    Π⁺ vs Π (the round tag rides along; the count is the `n²` broadcast
//!    either way — overhead is in bytes, reported as tag bits).
//! 3. **Resend-period sensitivity** of the asynchronous protocol: time to
//!    the first fresh decision after corruption, as the resend period
//!    grows.
//!
//! The sweeps live in `ftss_sweep::{e7a_table, e7c_table}`, shared with
//! `ftss-lab sweep --exp e7a|e7c`; `FTSS_JOBS` controls the worker count.

use ftss_sweep::{e7a_table, e7c_table, jobs_from_env, E7_SEEDS};

fn main() {
    let jobs = jobs_from_env();

    println!("\nE7a: compiler mechanism ablation — corrupted starts + one random");
    println!(
        "omitter ({E7_SEEDS} seeds; 'stabilized' = Σ+ eventually holds on the final window)\n"
    );
    print!("{}", e7a_table(E7_SEEDS, jobs));
    println!("\nMechanism necessity is Π-dependent: the iteration reset is load-");
    println!("bearing for FloodSet (its monotone seen-set never forgets corrupted");
    println!("values without it) while phase-king recomputes its state every round");
    println!("and survives. Only the full Figure-3 superimposition is safe for");
    println!("*arbitrary* canonical Π, which is what Theorem 4 quantifies over.");

    println!("\nE7b: superimposition overhead — Π+ adds one u64 round tag per message");
    println!("and no extra messages (broadcast count is n(n-1) per round either way).\n");

    println!("E7c: resend-period sensitivity — time to first fresh decision after");
    println!("corruption (async consensus, n=3, suspicion poll 25)\n");
    print!("{}", e7c_table(E7_SEEDS, jobs));
    println!("\nRecovery time grows roughly linearly with the resend period — the");
    println!("periodic resend is what re-synchronizes corrupted phases (§3, [KP90]).");
}
