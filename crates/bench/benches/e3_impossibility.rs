//! E3/E4 — Theorems 1 and 2: the impossibility scenarios, tabulated.
//!
//! **E3 (Theorem 1).** Under the rejected Tentative Definition 1, for
//! every candidate stabilization time `r`, each protocol archetype is
//! refuted by one of the two proof histories: History A (partition of
//! length `r` attributed to `p0`, then failure-free — the `r`-suffix must
//! satisfy Assumption 1 with faulty = {p0}) or History B (failure-free
//! with divergent corrupted counters — the suffix must satisfy
//! Assumption 1 with faulty = ∅).
//!
//! **E4 (Theorem 2).** A uniform protocol (Assumption 2) in the
//! permanently-partitioned history either leaves the faulty process
//! unhalted and disagreeing (uniformity violated) or halts a correct
//! process (Assumption 1's rate violated).

use ftss::analysis::{theorem1_demo, theorem2_demo, Archetype, Table};

fn main() {
    println!("\nE3: Theorem 1 — no finite stabilization under Tentative Definition 1\n");
    let mut t = Table::new(vec![
        "archetype",
        "r",
        "history A (partition, F={p0})",
        "history B (failure-free, F=∅)",
        "refuted",
    ]);
    for r in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        for a in Archetype::all() {
            let out = theorem1_demo(a, r, 8);
            t.row(vec![
                a.name().into(),
                r.to_string(),
                out.history_a
                    .as_ref()
                    .map(|v| format!("violates {}", v.rule))
                    .unwrap_or_else(|| "satisfied".into()),
                out.history_b
                    .as_ref()
                    .map(|v| format!("violates {}", v.rule))
                    .unwrap_or_else(|| "satisfied".into()),
                if out.refuted() { "yes" } else { "NO (!)" }.into(),
            ]);
        }
    }
    print!("{t}");
    println!("\nEvery archetype fails at least one history for every r, as Theorem 1 predicts.");

    println!("\nE4: Theorem 2 — uniform protocols cannot ftss-solve anything\n");
    let mut t = Table::new(vec![
        "uniform archetype",
        "rounds",
        "faulty halted",
        "correct halted",
        "c_p0 = c_p1",
        "uniformity (A2)",
        "rate (A1)",
        "refuted",
    ]);
    for rounds in [2usize, 4, 8, 16, 64] {
        for a in [Archetype::HaltOnDisagreement, Archetype::EagerHalt] {
            let out = theorem2_demo(a, rounds);
            t.row(vec![
                a.name().into(),
                rounds.to_string(),
                out.faulty_halted.to_string(),
                out.correct_halted.to_string(),
                (out.counters.0 == out.counters.1).to_string(),
                if out.uniformity_holds() {
                    "holds"
                } else {
                    "violated"
                }
                .into(),
                if out.assumption1_holds() {
                    "holds"
                } else {
                    "violated"
                }
                .into(),
                if out.refuted() { "yes" } else { "NO (!)" }.into(),
            ]);
        }
    }
    print!("{t}");
    println!("\nEach uniform archetype violates uniformity or halts a correct process —");
    println!("the two horns of Theorem 2's dilemma.");
}
