//! E8 — the bounded-counter impossibility (§2.4's remark).
//!
//! "Third, the current round number is counted by an unbounded variable.
//! In the full paper, we show an impossibility for a bounded counter
//! analogous to the impossibility shown in Theorem 2."
//!
//! The table runs round agreement with a counter wrapping at modulus `M`
//! against the unbounded Figure-1 protocol, over windows longer than `M`:
//! the bounded variant violates Assumption 1's rate condition at every
//! wrap, for every `M`, while the unbounded protocol passes the identical
//! check. (The deeper Theorem-2-style impossibility — that *no* bounded
//! protocol works, not just this one — is deferred to the full paper by
//! the authors; this experiment demonstrates the failure of the natural
//! candidate.)

use ftss::analysis::Table;
use ftss::core::{ftss_check, RateAgreementSpec};
use ftss::protocols::{BoundedRoundAgreement, RoundAgreement};
use ftss::sync_sim::{NoFaults, RunConfig, SyncRunner};

const SEEDS: u64 = 10;

fn main() {
    println!("\nE8: bounded vs unbounded round counters (§2.4's third requirement)");
    println!("window = 2·M rounds, n = 4, corrupted starts, {SEEDS} seeds per row\n");

    let mut t = Table::new(vec![
        "protocol",
        "modulus M",
        "rounds",
        "runs violating rate",
        "first violated rule",
    ]);

    for m in [4u64, 8, 16, 32, 64] {
        let rounds = (2 * m) as usize;
        let mut violations = 0;
        let mut rule = String::from("-");
        for seed in 0..SEEDS {
            let out = SyncRunner::new(BoundedRoundAgreement::new(m))
                .run(&mut NoFaults, &RunConfig::corrupted(4, rounds, seed))
                .unwrap();
            let report = ftss_check(&out.history, &RateAgreementSpec::new(), 1);
            if !report.is_satisfied() {
                violations += 1;
                if rule == "-" {
                    rule = report.violations[0].violation.rule.clone();
                }
            }
        }
        t.row(vec![
            format!("bounded (mod {m})"),
            m.to_string(),
            rounds.to_string(),
            format!("{violations}/{SEEDS}"),
            rule,
        ]);

        // The unbounded comparator on identical workloads.
        let mut violations = 0;
        for seed in 0..SEEDS {
            let out = SyncRunner::new(RoundAgreement)
                .run(&mut NoFaults, &RunConfig::corrupted(4, rounds, seed))
                .unwrap();
            if !ftss_check(&out.history, &RateAgreementSpec::new(), 1).is_satisfied() {
                violations += 1;
            }
        }
        t.row(vec![
            "unbounded (Fig 1)".into(),
            "∞".into(),
            rounds.to_string(),
            format!("{violations}/{SEEDS}"),
            "-".into(),
        ]);
    }
    print!("{t}");
    println!("\nEvery window longer than M contains a wrap, and every wrap breaks");
    println!("the rate condition — bounded counters cannot meet Assumption 1 on");
    println!("long windows, which is why Figure 3 requires an unbounded variable.");
}
