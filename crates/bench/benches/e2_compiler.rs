//! E2 — Figures 2–3 / Theorem 4: the compiled protocol Π⁺ ftss-solves Σ⁺
//! with stabilization time `final_round` (plus up to another `final_round`
//! when suspect sets are corrupted, plus 1 round of round agreement).
//!
//! For each underlying Π (FloodSet, phase-king) and fault bound `f`, run
//! Π⁺ from seeded arbitrary corruption and measure the empirical
//! stabilization of `Σ⁺` (tagged agreement). The table compares the
//! measured max with the paper's bound `2·final_round + 1`.

use ftss::analysis::{measured_stabilization_time, Table};
use ftss::compiler::Compiled;
use ftss::core::ProcessId;
use ftss::core::{CrashSchedule, Round};
use ftss::protocols::{CanonicalProtocol, FloodSet, PhaseKing, RepeatedConsensusSpec};
use ftss::sync_sim::{Adversary, CrashOnly, NoFaults, RandomOmission, RunConfig, SyncRunner};
use ftss_bench::{max, mean};

const SEEDS: u64 = 25;

fn measure_pi<P>(
    make: impl Fn() -> P,
    n: usize,
    adversary_for: &dyn Fn(u64) -> Box<dyn Adversary>,
    label: &str,
    t: &mut Table,
) where
    P: CanonicalProtocol,
    P::Output: ftss::core::Corrupt,
{
    let fr = make().final_round() as usize;
    let rounds = 10 * fr + 10;
    let bound = 2 * fr + 1;
    let mut measured = Vec::new();
    let mut failures = 0usize;
    for seed in 0..SEEDS {
        let mut adv = adversary_for(seed);
        let out = SyncRunner::new(Compiled::new(make()))
            .run(adv.as_mut(), &RunConfig::corrupted(n, rounds, seed ^ 0xe2))
            .expect("valid config");
        let m = measured_stabilization_time(&out.history, &RepeatedConsensusSpec::agreement_only())
            .expect("non-empty");
        match m.stabilization_rounds {
            Some(s) => measured.push(s),
            None => failures += 1,
        }
    }
    t.row(vec![
        make().name().into(),
        n.to_string(),
        fr.to_string(),
        label.into(),
        mean(&measured),
        max(&measured),
        bound.to_string(),
        if failures == 0 && measured.iter().all(|&s| s <= bound) {
            "yes".into()
        } else {
            format!("NO ({failures} unstabilized)")
        },
    ]);
}

fn main() {
    println!("\nE2: the compiler Π→Π+ (Fig 3) — stabilization of Σ+, {SEEDS} seeds per row");
    println!("claim (Thm 4): stabilization ≤ final_round (+final_round for corrupted");
    println!("suspect sets, +1 for round agreement) = 2·final_round + 1\n");

    let mut t = Table::new(vec![
        "Π",
        "n",
        "final_round",
        "faults",
        "mean stab",
        "max stab",
        "bound",
        "within",
    ]);

    for (f, n) in [(1usize, 4usize), (2, 7), (3, 10)] {
        let inputs: Vec<u64> = (0..n as u64).map(|i| (i * 13) % 29).collect();
        measure_pi(
            || FloodSet::new(f, inputs.clone()),
            n,
            &|_| Box::new(NoFaults),
            "none",
            &mut t,
        );
        let inputs2 = inputs.clone();
        measure_pi(
            || FloodSet::new(f, inputs2.clone()),
            n,
            &|seed| Box::new(RandomOmission::new([ProcessId(0)], 0.4, seed)),
            "1 omitter p=0.4",
            &mut t,
        );
        let inputs3 = inputs.clone();
        measure_pi(
            || FloodSet::new(f, inputs3.clone()),
            n,
            &|_| {
                let mut cs = CrashSchedule::none();
                cs.set(ProcessId(1), Round::new(3));
                Box::new(CrashOnly::new(cs))
            },
            "crash @r3",
            &mut t,
        );
    }

    for (f, n) in [(1usize, 5usize), (2, 9)] {
        let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        measure_pi(
            || PhaseKing::new(f, inputs.clone()),
            n,
            &|_| Box::new(NoFaults),
            "none",
            &mut t,
        );
        let inputs2 = inputs.clone();
        measure_pi(
            || PhaseKing::new(f, inputs2.clone()),
            n,
            &|seed| Box::new(RandomOmission::new([ProcessId(n - 1)], 0.4, seed)),
            "1 omitter p=0.4",
            &mut t,
        );
    }

    print!("{t}");
    println!("\n(Σ+ = tagged agreement across iterations; window = final stable coterie)");
}
