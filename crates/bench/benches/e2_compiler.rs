//! E2 — Figures 2–3 / Theorem 4: the compiled protocol Π⁺ ftss-solves Σ⁺
//! with stabilization time `final_round` (plus up to another `final_round`
//! when suspect sets are corrupted, plus 1 round of round agreement).
//!
//! For each underlying Π (FloodSet, phase-king) and fault bound `f`, run
//! Π⁺ from seeded arbitrary corruption and measure the empirical
//! stabilization of `Σ⁺` (tagged agreement). The table compares the
//! measured max with the paper's bound `2·final_round + 1`.
//!
//! The sweep itself lives in `ftss_sweep::e2_table`, shared with
//! `ftss-lab sweep --exp e2`; `FTSS_JOBS` controls the worker count.

use ftss_sweep::{e2_table, jobs_from_env, E2_SEEDS};

fn main() {
    println!("\nE2: the compiler Π→Π+ (Fig 3) — stabilization of Σ+, {E2_SEEDS} seeds per row");
    println!("claim (Thm 4): stabilization ≤ final_round (+final_round for corrupted");
    println!("suspect sets, +1 for round agreement) = 2·final_round + 1\n");
    print!("{}", e2_table(E2_SEEDS, jobs_from_env()));
    println!("\n(Σ+ = tagged agreement across iterations; window = final stable coterie)");
}
