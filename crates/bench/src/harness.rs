//! A thin in-repo timer harness — the workspace's replacement for
//! `criterion`, kept deliberately small: warmup, repeated timed batches,
//! and a median/min/mean report. No registry dependency, no plotting.
//!
//! Available behind `--features bench-harness`, like the bench targets
//! that use it:
//!
//! ```text
//! cargo bench --features bench-harness --bench micro
//! ```

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

use ftss_telemetry::json::escape_into;

/// Re-export of [`std::hint::black_box`]: keeps the optimizer from
/// deleting the benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark label.
    pub name: String,
    /// Iterations per timed batch.
    pub iters_per_batch: u64,
    /// Median ns/iter over the batches.
    pub median_ns: f64,
    /// Minimum ns/iter over the batches (least-noise estimate).
    pub min_ns: f64,
    /// Mean ns/iter over the batches.
    pub mean_ns: f64,
}

impl Sample {
    fn render_ns(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.2} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.2} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.2} µs", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        }
    }
}

impl std::fmt::Display for Sample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<40} median {:>10}  min {:>10}  mean {:>10}",
            self.name,
            Sample::render_ns(self.median_ns),
            Sample::render_ns(self.min_ns),
            Sample::render_ns(self.mean_ns),
        )
    }
}

/// Harness configuration. The defaults mirror a quick criterion run:
/// ~0.5 s of warmup and ~2 s of measurement per benchmark.
#[derive(Clone, Debug)]
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    batches: u32,
    results: Vec<Sample>,
}

impl Default for Bencher {
    fn default() -> Bencher {
        Bencher::new()
    }
}

impl Bencher {
    /// A harness with the default budget (0.5 s warmup, 2 s measure,
    /// 20 batches per benchmark).
    pub fn new() -> Bencher {
        Bencher {
            warmup: Duration::from_millis(500),
            measure: Duration::from_secs(2),
            batches: 20,
            results: Vec::new(),
        }
    }

    /// A faster budget for CI smoke runs.
    pub fn quick() -> Bencher {
        Bencher {
            warmup: Duration::from_millis(50),
            measure: Duration::from_millis(200),
            batches: 8,
            results: Vec::new(),
        }
    }

    /// Times `f`, printing one summary line immediately and recording the
    /// sample for [`finish`](Bencher::finish).
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &Sample {
        // Warmup: run until the warmup budget elapses, counting iterations
        // to calibrate the batch size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        // Pick iters/batch so that `batches` timed batches fill the
        // measurement budget.
        let budget_ns = self.measure.as_nanos() as f64 / self.batches as f64;
        let iters = ((budget_ns / per_iter).round() as u64).max(1);

        let mut per_batch_ns: Vec<f64> = Vec::with_capacity(self.batches as usize);
        for _ in 0..self.batches {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_batch_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_batch_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = per_batch_ns[per_batch_ns.len() / 2];
        let min_ns = per_batch_ns[0];
        let mean_ns = per_batch_ns.iter().sum::<f64>() / per_batch_ns.len() as f64;

        let sample = Sample {
            name: name.to_string(),
            iters_per_batch: iters,
            median_ns,
            min_ns,
            mean_ns,
        };
        println!("{sample}");
        self.results.push(sample);
        self.results.last().expect("just pushed")
    }

    /// All samples recorded so far, in bench order.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    /// Prints a closing summary table.
    pub fn finish(&self) {
        println!("\n== {} benchmark(s) ==", self.results.len());
        for s in &self.results {
            println!("{s}");
        }
    }

    /// Renders the recorded samples as a JSON object, one field per
    /// benchmark in bench order (the trace-schema dialect: unsigned
    /// integers only, so timings are rounded to whole nanoseconds).
    ///
    /// The output parses with [`ftss_telemetry::json::parse`] and, for a
    /// fixed set of benchmarks, has a deterministic field order — suitable
    /// for diffing one CI artifact against another.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, s) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            escape_into(&mut out, &s.name);
            out.push_str(&format!(
                ": {{\"median_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}, \"iters_per_batch\": {}}}",
                s.median_ns.round() as u64,
                s.min_ns.round() as u64,
                s.mean_ns.round() as u64,
                s.iters_per_batch,
            ));
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes [`to_json`](Bencher::to_json) to `path` (e.g.
    /// `BENCH_micro.json` for the CI artifact).
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_positive_timings() {
        let mut b = Bencher::quick();
        let s = b.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.mean_ns * 2.0);
        assert_eq!(b.results().len(), 1);
    }

    #[test]
    fn json_report_is_ordered_and_parseable() {
        let mut b = Bencher::quick();
        b.bench("z/last\"quoted", || black_box(1u64 + 1));
        b.bench("a/first", || black_box(2u64 + 2));
        let json = b.to_json();
        let parsed = ftss_telemetry::json::parse(&json).expect("self-emitted JSON parses");
        match &parsed {
            ftss_telemetry::json::JsonValue::Obj(fields) => {
                // Bench order, not alphabetical: determinism comes from the
                // bench program, not from sorting.
                assert_eq!(fields[0].0, "z/last\"quoted");
                assert_eq!(fields[1].0, "a/first");
            }
            other => panic!("expected object, got {other:?}"),
        }
        let med = parsed
            .get("a/first")
            .and_then(|s| s.get("median_ns"))
            .and_then(|v| v.as_u64());
        assert!(med.is_some(), "median_ns must round-trip as u64");
    }

    #[test]
    fn render_scales_units() {
        assert_eq!(Sample::render_ns(12.0), "12 ns");
        assert_eq!(Sample::render_ns(1_500.0), "1.50 µs");
        assert_eq!(Sample::render_ns(2_500_000.0), "2.50 ms");
        assert_eq!(Sample::render_ns(3_000_000_000.0), "3.00 s");
    }
}
