//! # ftss-bench — experiment harness (E1–E7)
//!
//! One bench target per experiment in `DESIGN.md` §4, each regenerating a
//! figure/theorem of the paper as an empirical table. Run them all with
//! `cargo bench`, or one with `cargo bench --bench e1_round_agreement`.
//! Recorded outputs live in `EXPERIMENTS.md`.
//!
//! This library hosts the helpers the bench binaries share. The timer
//! harness that replaced the old `criterion` dependency lives in
//! [`harness`] behind the `bench-harness` feature.

#[cfg(feature = "bench-harness")]
pub mod harness;

use ftss::async_sim::{AsyncConfig, AsyncRunner, Time};
use ftss::consensus_async::SsConsensusProcess;
use ftss::core::{Corrupt, ProcessId};
use ftss::detectors::WeakOracle;
use ftss_rng::StdRng;

// The table-cell helpers moved to `ftss-sweep` with the E1/E2/E7 drivers;
// re-exported so every bench target keeps one import path.
pub use ftss_sweep::{max, mean};

/// Builds a corrupted self-stabilizing consensus system ready to run.
pub fn build_ss_consensus(
    inputs: &[u64],
    crashes: Vec<(ProcessId, Time)>,
    seed: u64,
    corrupt: bool,
) -> AsyncRunner<SsConsensusProcess> {
    let n = inputs.len();
    let oracle = WeakOracle::new(n, crashes.clone(), 300, seed, 0.2);
    let mut procs: Vec<SsConsensusProcess> = (0..n)
        .map(|i| SsConsensusProcess::new(ProcessId(i), inputs.to_vec(), oracle.clone(), 25, 40))
        .collect();
    if corrupt {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5a5a);
        for p in &mut procs {
            p.corrupt(&mut rng);
        }
    }
    let mut cfg = AsyncConfig::turbulent(seed, 50, 300);
    for (p, t) in crashes {
        cfg = cfg.with_crash(p, t);
    }
    AsyncRunner::new(procs, cfg).expect("valid configuration")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_max() {
        assert_eq!(mean(&[1, 2, 3]), "2.0");
        assert_eq!(max(&[1, 5, 3]), "5");
        assert_eq!(mean(&[]), "-");
        assert_eq!(max(&[]), "-");
    }

    #[test]
    fn builder_smoke() {
        let mut r = build_ss_consensus(&[1, 2, 3], vec![], 1, true);
        r.run_until(5_000);
        assert!(r.stats().messages_delivered > 0);
    }
}
