//! The scheduler seam: who decides message delays and event order.
//!
//! [`AsyncRunner`](crate::AsyncRunner) is parameterized by a [`Scheduler`],
//! which owns the event queue and the two nondeterministic choices of the
//! asynchronous model:
//!
//! 1. **delay assignment** — what delay a freshly sent message gets, and
//! 2. **dispatch order** — which pending event is consumed next.
//!
//! Three implementations cover the repo's needs:
//!
//! * [`RandomScheduler`] — the historical behaviour, bit for bit: a seeded
//!   uniform delay per send and a `(time, seq)` min-heap. Every existing
//!   entry point uses it by default, so extracting the seam changed no
//!   byte of any recorded trace.
//! * [`DfsScheduler`] — exhaustive enumeration of dispatch orders for the
//!   model checker (`ftss-check`): an iterative depth-first search over
//!   "which pending event goes next", driven by an explicit choice stack —
//!   no recursion, no randomness, bounded by an event horizon.
//! * [`AdversaryScheduler`] — a worst-case delay assigner for systems too
//!   large to enumerate: every message touching a target set is slowed to
//!   the maximum admissible delay while the rest of the system sprints.
//!
//! Fairness note: all three schedulers eventually dispatch every pushed
//! event (the DFS within its step bound), preserving the no-message-loss
//! guarantee the ◇-properties rely on.

use crate::runner::{AsyncConfig, Time};
use ftss_core::{Payload, ProcessId};
use ftss_rng::Rng;
use ftss_rng::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A queued event: a message awaiting delivery or an armed timer.
#[derive(Clone, Debug)]
pub struct Pending<M> {
    /// Scheduled dispatch time.
    pub time: Time,
    /// Tie-breaker: insertion order (strictly increasing per run).
    pub seq: u64,
    /// What happens on dispatch.
    pub kind: PendingKind<M>,
}

/// The payload of a [`Pending`] event.
#[derive(Clone, Debug)]
pub enum PendingKind<M> {
    /// Deliver `msg` from `from` to `to`.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Shared with the other copies of the originating broadcast: a
        /// queued broadcast holds one message allocation, not `n`.
        msg: Payload<M>,
    },
    /// Fire timer `tag` at process `p`.
    Timer {
        /// The process whose timer fires.
        p: ProcessId,
        /// The tag passed back to `on_timer`.
        tag: u64,
    },
}

// Identity and order are `(time, seq)` only — `seq` is unique per run, so
// this is a total order and `M` needs no `Eq` bound (which the runner used
// to demand of every message type).
impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl<M> Eq for Pending<M> {}

impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The runner's source of delays and event order.
///
/// The runner calls [`Scheduler::delay`] once per send (in send order),
/// pushes the resulting event, and repeatedly pops until the scheduler is
/// exhausted or the horizon is reached. Virtual time is clamped monotone by
/// the runner (`now = max(now, event.time)`), so a scheduler may legally
/// dispatch events "out of time order" — that is exactly what the DFS
/// explores.
pub trait Scheduler<M> {
    /// The delay to assign to a message sent `from → to` at time `now`.
    /// Must be at least 1 (no zero-delay delivery loops).
    fn delay(&mut self, cfg: &AsyncConfig, now: Time, from: ProcessId, to: ProcessId) -> Time;

    /// Accepts a new pending event.
    fn push(&mut self, ev: Pending<M>);

    /// Yields the next event to dispatch, or `None` when the run is over
    /// (queue empty, or an exploration bound was hit).
    fn pop(&mut self) -> Option<Pending<M>>;

    /// The scheduled time of the event [`Scheduler::pop`] would yield.
    fn peek_time(&self) -> Option<Time>;

    /// Whether to replace the copy `from → to` sent at `now` with a forged
    /// payload: `Some(seed)` makes the runner substitute the message the
    /// process type derives from `seed` (see
    /// [`AsyncProcess::forge_message`](crate::AsyncProcess::forge_message));
    /// the runner panics if the process type leaves that hook unimplemented.
    ///
    /// Consulted exactly once per send copy, immediately after
    /// [`Scheduler::delay`], in send order — the same traffic-determined
    /// consultation discipline that keeps the synchronous Byzantine
    /// adversary's RNG stream independent of its own outcomes. The default
    /// never forges.
    fn forge(&mut self, now: Time, from: ProcessId, to: ProcessId) -> Option<u64> {
        let _ = (now, from, to);
        None
    }
}

/// The admissible maximum delay at `now` under `cfg` (pre- vs post-GST).
fn max_delay_at(cfg: &AsyncConfig, now: Time) -> Time {
    if now >= cfg.gst {
        cfg.max_delay
    } else {
        cfg.pre_gst_max_delay
    }
}

/// The historical seeded-random scheduler: uniform delays in
/// `min_delay..=max` drawn from a [`StdRng`] seeded with `cfg.seed`, events
/// dispatched in `(time, seq)` order via a binary min-heap.
///
/// This reproduces the pre-seam `AsyncRunner` behaviour exactly — same RNG
/// stream, same draw order (one draw per send, none per timer), same heap
/// ordering — so seeds, recorded traces, and EXPERIMENTS.md rows are
/// unchanged.
#[derive(Debug)]
pub struct RandomScheduler<M> {
    heap: BinaryHeap<Reverse<Pending<M>>>,
    rng: StdRng,
}

impl<M> RandomScheduler<M> {
    /// A scheduler seeded from `cfg.seed`.
    pub fn for_config(cfg: &AsyncConfig) -> Self {
        RandomScheduler {
            heap: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(cfg.seed),
        }
    }
}

impl<M> Scheduler<M> for RandomScheduler<M> {
    fn delay(&mut self, cfg: &AsyncConfig, now: Time, _from: ProcessId, _to: ProcessId) -> Time {
        let max = max_delay_at(cfg, now);
        self.rng.gen_range(cfg.min_delay..=max).max(1)
    }

    fn push(&mut self, ev: Pending<M>) {
        self.heap.push(Reverse(ev));
    }

    fn pop(&mut self) -> Option<Pending<M>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }
}

/// Exhaustive dispatch-order enumeration for the model checker.
///
/// Every [`pop`](Scheduler::pop) is a *choice point*: any of the currently
/// pending events may go next. The scheduler records each choice on an
/// explicit stack of `(chosen, alternatives)` pairs; one run follows the
/// stack as a prefix (replaying earlier choices) and extends it with
/// first-alternative choices past the end. After the run,
/// [`advance`](DfsScheduler::advance) increments the stack like an odometer
/// — bump the deepest choice point that still has untried alternatives,
/// discard everything below — giving an iterative, recursion-free DFS over
/// all dispatch interleavings.
///
/// The tree is kept finite by `max_steps`: a run dispatches at most that
/// many events (the *event horizon*), after which `pop` returns `None`.
/// Delays are irrelevant to the exploration (order is chosen directly), so
/// `delay` returns the minimum admissible value and virtual time merely
/// stays monotone.
#[derive(Debug)]
pub struct DfsScheduler<M> {
    /// Events not yet dispatched in the current run, in insertion order.
    pending: Vec<Pending<M>>,
    /// The choice stack: `(index chosen, alternatives available)` at each
    /// dispatch, in dispatch order. With partial-order reduction on, the
    /// index counts over *awake* candidates only.
    stack: Vec<(usize, usize)>,
    /// How many choices of `stack` the current run has consumed.
    depth: usize,
    /// Maximum dispatches per run (the event horizon).
    max_steps: usize,
    /// Sleep-set partial-order reduction (see [`DfsScheduler::with_por`]).
    por: bool,
    /// Seqs of pending events proven redundant at the current node: each
    /// commutes with everything dispatched since it was enabled, so an
    /// already-explored sibling branch covers its interleavings.
    sleep: Vec<u64>,
}

impl<M> DfsScheduler<M> {
    /// A DFS scheduler that dispatches at most `max_steps` events per run.
    pub fn new(max_steps: usize) -> Self {
        DfsScheduler {
            pending: Vec::new(),
            stack: Vec::new(),
            depth: 0,
            max_steps,
            por: false,
            sleep: Vec::new(),
        }
    }

    /// Enables sleep-set partial-order reduction: two deliveries commute
    /// iff they dispatch to *different* destination processes (each only
    /// mutates its destination's state), so after fully exploring the
    /// branch that dispatches event `e` first, `e` is put to sleep in the
    /// later sibling branches and stays asleep until some dependent event
    /// — one with `e`'s destination — is dispatched. A run in which every
    /// pending event sleeps is *pruned*: its continuations are permutations
    /// of runs already explored (see [`DfsScheduler::was_pruned`]).
    #[must_use]
    pub fn with_por(mut self) -> Self {
        self.por = true;
        self
    }

    /// Whether the run just finished was cut short by the sleep set
    /// (possible only under [`with_por`](DfsScheduler::with_por)): events
    /// remain pending inside the horizon but every one of them sleeps.
    /// Pruned runs end mid-flight, so per-run oracles must skip them —
    /// every complete interleaving they abbreviate has its own complete
    /// representative elsewhere in the tree. Computed from the queue, not
    /// a flag, because a run can end at either [`Scheduler::pop`] or
    /// [`Scheduler::peek_time`] seeing the all-asleep queue.
    pub fn was_pruned(&self) -> bool {
        self.por
            && self.depth < self.max_steps
            && !self.pending.is_empty()
            && self.pending.iter().all(|e| self.sleep.contains(&e.seq))
    }

    /// Moves to the next unexplored schedule. Returns `false` when the
    /// whole tree has been enumerated. The caller must start a fresh run
    /// (fresh processes, fresh runner) after each successful `advance`.
    pub fn advance(&mut self) -> bool {
        self.pending.clear();
        self.sleep.clear();
        self.depth = 0;
        while let Some((chosen, alts)) = self.stack.pop() {
            if chosen + 1 < alts {
                self.stack.push((chosen + 1, alts));
                return true;
            }
        }
        false
    }

    /// The choice stack of the schedule just run: the sequence of
    /// `(chosen, alternatives)` decisions, in dispatch order. A schedule is
    /// fully identified by its chosen indices.
    pub fn choices(&self) -> &[(usize, usize)] {
        &self.stack
    }
}

/// The process whose state an event's dispatch mutates.
fn event_dest<M>(kind: &PendingKind<M>) -> ProcessId {
    match kind {
        PendingKind::Deliver { to, .. } => *to,
        PendingKind::Timer { p, .. } => *p,
    }
}

impl<M> Scheduler<M> for DfsScheduler<M> {
    fn delay(&mut self, cfg: &AsyncConfig, _now: Time, _from: ProcessId, _to: ProcessId) -> Time {
        cfg.min_delay.max(1)
    }

    fn push(&mut self, ev: Pending<M>) {
        self.pending.push(ev);
    }

    fn pop(&mut self) -> Option<Pending<M>> {
        if self.pending.is_empty() || self.depth >= self.max_steps {
            return None;
        }
        // Awake candidates, in insertion order. Without POR the sleep set
        // is always empty, so this is just `0..pending.len()`.
        let candidates: Vec<usize> = (0..self.pending.len())
            .filter(|&i| !self.sleep.contains(&self.pending[i].seq))
            .collect();
        if candidates.is_empty() {
            // Everything pending sleeps: this continuation is a reordering
            // of commuting dispatches already explored elsewhere.
            return None;
        }
        let chosen = if self.depth < self.stack.len() {
            // Replaying the prefix of an earlier schedule. The run up to
            // this point is deterministic, so the alternative count must
            // match what was recorded.
            debug_assert_eq!(self.stack[self.depth].1, candidates.len());
            self.stack[self.depth].0
        } else {
            self.stack.push((0, candidates.len()));
            0
        };
        self.depth += 1;
        // `remove` keeps the insertion order of the untouched events, so
        // choice indices have a stable meaning across replays.
        let ev = self.pending.remove(candidates[chosen]);
        if self.por {
            // Sleep-set maintenance: the earlier candidates at this node
            // head already-explored sibling branches, so they sleep in this
            // subtree — until a dependent dispatch (same destination as the
            // sleeper) invalidates the commutation argument and wakes them.
            for &i in &candidates[..chosen] {
                // Indices before `candidates[chosen]` are unshifted by the
                // `remove` above, since candidates are in ascending order.
                self.sleep.push(self.pending[i].seq);
            }
            let dest = event_dest(&ev.kind);
            let pending = &self.pending;
            self.sleep.retain(|&seq| {
                pending
                    .iter()
                    .find(|e| e.seq == seq)
                    .is_some_and(|e| event_dest(&e.kind) != dest)
            });
        }
        Some(ev)
    }

    fn peek_time(&self) -> Option<Time> {
        if self.pending.is_empty() || self.depth >= self.max_steps {
            return None;
        }
        let candidates: Vec<usize> = (0..self.pending.len())
            .filter(|&i| !self.sleep.contains(&self.pending[i].seq))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let chosen = if self.depth < self.stack.len() {
            self.stack[self.depth].0
        } else {
            0
        };
        Some(self.pending[candidates[chosen]].time)
    }
}

/// Worst-case delays against a target set, for systems too large to
/// enumerate: every message sent *by or to* a target process is assigned
/// the maximum admissible delay at its send time, every other message the
/// minimum. Dispatch order is the same `(time, seq)` min-heap as
/// [`RandomScheduler`] — fully deterministic, no randomness at all.
///
/// Slowing a coterie's members to the admissible maximum while the rest of
/// the system sprints is the async analogue of the sync model's
/// quorum-targeting omission adversary: it maximizes the window in which
/// targets look crashed to a heartbeat detector without violating the
/// fairness (eventual delivery) the model guarantees.
#[derive(Debug)]
pub struct AdversaryScheduler<M> {
    heap: BinaryHeap<Reverse<Pending<M>>>,
    targets: Vec<ProcessId>,
    window: (Time, Time),
}

impl<M> AdversaryScheduler<M> {
    /// An adversary slowing every message that touches `targets`, over the
    /// whole run.
    pub fn new(targets: impl IntoIterator<Item = ProcessId>) -> Self {
        AdversaryScheduler {
            heap: BinaryHeap::new(),
            targets: targets.into_iter().collect(),
            window: (0, Time::MAX),
        }
    }

    /// Restricts the inflation to messages *sent* while virtual time is in
    /// `from..=to` — a delay-inflation storm window. Outside the window the
    /// adversary assigns minimum delays like everyone else, so the system
    /// sprints again once the storm passes. The default window is the whole
    /// run, which is the original behaviour.
    #[must_use]
    pub fn with_window(mut self, from: Time, to: Time) -> Self {
        self.window = (from, to);
        self
    }

    fn targeted(&self, p: ProcessId) -> bool {
        self.targets.contains(&p)
    }
}

impl<M> Scheduler<M> for AdversaryScheduler<M> {
    fn delay(&mut self, cfg: &AsyncConfig, now: Time, from: ProcessId, to: ProcessId) -> Time {
        let storming = (self.window.0..=self.window.1).contains(&now);
        if storming && (self.targeted(from) || self.targeted(to)) {
            max_delay_at(cfg, now).max(1)
        } else {
            cfg.min_delay.max(1)
        }
    }

    fn push(&mut self, ev: Pending<M>) {
        self.heap.push(Reverse(ev));
    }

    fn pop(&mut self) -> Option<Pending<M>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }
}

/// The asynchronous Byzantine adversary: [`RandomScheduler`] delays and
/// dispatch order, plus message forgery by a declared traitor set — the
/// async twin of the synchronous `ByzantineAdversary`.
///
/// Each copy sent by a traitor is forged with probability `p_forge`; the
/// forgery seed handed to the process type's `forge_message` is drawn from
/// a dedicated RNG stream. Both draws happen for *every* traitor-sent copy
/// (forge decision first, seed second), so the stream position is a pure
/// function of the traffic pattern and runs stay byte-identical across
/// re-executions.
#[derive(Debug)]
pub struct ByzantineScheduler<M> {
    inner: RandomScheduler<M>,
    traitors: Vec<ProcessId>,
    p_forge: f64,
    forge_rng: StdRng,
}

impl<M> ByzantineScheduler<M> {
    /// Random delays per `cfg`, with `traitors` forging each sent copy
    /// with probability `p_forge`; `forge_seed` seeds the forgery stream
    /// (independent of `cfg.seed`, which drives delays).
    pub fn new(
        cfg: &AsyncConfig,
        traitors: impl IntoIterator<Item = ProcessId>,
        p_forge: f64,
        forge_seed: u64,
    ) -> Self {
        ByzantineScheduler {
            inner: RandomScheduler::for_config(cfg),
            traitors: traitors.into_iter().collect(),
            p_forge,
            forge_rng: StdRng::seed_from_u64(forge_seed),
        }
    }

    /// The declared traitor set.
    pub fn traitors(&self) -> &[ProcessId] {
        &self.traitors
    }
}

impl<M> Scheduler<M> for ByzantineScheduler<M> {
    fn delay(&mut self, cfg: &AsyncConfig, now: Time, from: ProcessId, to: ProcessId) -> Time {
        self.inner.delay(cfg, now, from, to)
    }

    fn push(&mut self, ev: Pending<M>) {
        self.inner.push(ev);
    }

    fn pop(&mut self) -> Option<Pending<M>> {
        self.inner.pop()
    }

    fn peek_time(&self) -> Option<Time> {
        self.inner.peek_time()
    }

    fn forge(&mut self, _now: Time, from: ProcessId, _to: ProcessId) -> Option<u64> {
        if !self.traitors.contains(&from) {
            return None;
        }
        // Unconditional draw pair per traitor copy: decision, then seed.
        let forge = self.forge_rng.gen_bool(self.p_forge);
        let seed = self.forge_rng.next_u64();
        forge.then_some(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(time: Time, seq: u64) -> Pending<u8> {
        Pending {
            time,
            seq,
            kind: PendingKind::Timer {
                p: ProcessId(0),
                tag: 0,
            },
        }
    }

    #[test]
    fn pending_orders_by_time_then_seq() {
        let a = deliver(5, 1);
        let b = deliver(5, 2);
        let c = deliver(3, 9);
        assert!(c < a && a < b);
        assert_eq!(a, deliver(5, 1));
    }

    #[test]
    fn random_scheduler_pops_in_time_order() {
        let cfg = AsyncConfig::tame(1);
        let mut s: RandomScheduler<u8> = RandomScheduler::for_config(&cfg);
        s.push(deliver(30, 1));
        s.push(deliver(10, 2));
        s.push(deliver(10, 1));
        assert_eq!(s.peek_time(), Some(10));
        let order: Vec<(Time, u64)> =
            std::iter::from_fn(|| s.pop().map(|e| (e.time, e.seq))).collect();
        assert_eq!(order, vec![(10, 1), (10, 2), (30, 1)]);
    }

    #[test]
    fn random_delay_is_within_bounds_and_positive() {
        let mut cfg = AsyncConfig::tame(7);
        cfg.min_delay = 0; // degenerate config: delays still end up >= 1
        let mut s: RandomScheduler<u8> = RandomScheduler::for_config(&cfg);
        for _ in 0..100 {
            let d = s.delay(&cfg, 0, ProcessId(0), ProcessId(1));
            assert!((1..=cfg.max_delay).contains(&d));
        }
    }

    #[test]
    fn dfs_enumerates_all_orders_of_independent_events() {
        // 3 events pushed up front and never re-armed: the DFS must visit
        // exactly 3! = 6 dispatch orders.
        let mut s: DfsScheduler<u8> = DfsScheduler::new(16);
        let mut orders = Vec::new();
        loop {
            for seq in 1..=3 {
                s.push(deliver(1, seq));
            }
            let mut order = Vec::new();
            while let Some(e) = s.pop() {
                order.push(e.seq);
            }
            orders.push(order);
            if !s.advance() {
                break;
            }
        }
        orders.sort();
        orders.dedup();
        assert_eq!(orders.len(), 6, "3! dispatch orders");
    }

    fn timer_at(p: usize, seq: u64) -> Pending<u8> {
        Pending {
            time: 1,
            seq,
            kind: PendingKind::Timer {
                p: ProcessId(p),
                tag: 0,
            },
        }
    }

    #[test]
    fn por_collapses_commuting_events_to_one_complete_order() {
        // 3 events to 3 distinct destinations: pairwise commuting, so the
        // sleep sets leave exactly one complete dispatch order (the other
        // 5 of 3! become early-pruned stubs).
        let mut s: DfsScheduler<u8> = DfsScheduler::new(16).with_por();
        let mut complete = Vec::new();
        let mut pruned = 0;
        loop {
            for p in 0..3 {
                s.push(timer_at(p, p as u64 + 1));
            }
            let mut order = Vec::new();
            while let Some(e) = s.pop() {
                order.push(e.seq);
            }
            if s.was_pruned() {
                pruned += 1;
            } else {
                complete.push(order);
            }
            if !s.advance() {
                break;
            }
        }
        assert_eq!(complete, vec![vec![1, 2, 3]], "one representative order");
        assert!(pruned > 0 && pruned < 6, "stubs, not full orders: {pruned}");
    }

    #[test]
    fn por_keeps_all_orders_of_dependent_events() {
        // 3 events to the SAME destination: fully dependent, nothing may
        // sleep — the reduction must degenerate to the full 3! = 6.
        let mut s: DfsScheduler<u8> = DfsScheduler::new(16).with_por();
        let mut orders = Vec::new();
        loop {
            for seq in 1..=3 {
                s.push(timer_at(0, seq));
            }
            let mut order = Vec::new();
            while let Some(e) = s.pop() {
                order.push(e.seq);
            }
            assert!(!s.was_pruned());
            orders.push(order);
            if !s.advance() {
                break;
            }
        }
        orders.sort();
        orders.dedup();
        assert_eq!(orders.len(), 6, "dependent events keep every order");
    }

    #[test]
    fn dfs_event_horizon_bounds_each_run() {
        let mut s: DfsScheduler<u8> = DfsScheduler::new(2);
        for seq in 1..=4 {
            s.push(deliver(1, seq));
        }
        let mut count = 0;
        while s.pop().is_some() {
            count += 1;
        }
        assert_eq!(count, 2, "horizon cuts the run");
        assert_eq!(s.peek_time(), None);
    }

    #[test]
    fn adversary_stretches_only_target_traffic() {
        let cfg = AsyncConfig::tame(0); // delays 1..=10
        let mut s: AdversaryScheduler<u8> = AdversaryScheduler::new([ProcessId(1)]);
        assert_eq!(s.delay(&cfg, 0, ProcessId(0), ProcessId(1)), 10);
        assert_eq!(s.delay(&cfg, 0, ProcessId(1), ProcessId(0)), 10);
        assert_eq!(s.delay(&cfg, 0, ProcessId(0), ProcessId(2)), 1);
    }

    #[test]
    fn adversary_window_bounds_the_inflation() {
        let cfg = AsyncConfig::tame(0); // delays 1..=10
        let mut s: AdversaryScheduler<u8> =
            AdversaryScheduler::new([ProcessId(1)]).with_window(100, 200);
        assert_eq!(s.delay(&cfg, 99, ProcessId(0), ProcessId(1)), 1);
        assert_eq!(s.delay(&cfg, 100, ProcessId(0), ProcessId(1)), 10);
        assert_eq!(s.delay(&cfg, 200, ProcessId(1), ProcessId(0)), 10);
        assert_eq!(s.delay(&cfg, 201, ProcessId(0), ProcessId(1)), 1);
        // Non-target traffic sprints even inside the window.
        assert_eq!(s.delay(&cfg, 150, ProcessId(0), ProcessId(2)), 1);
    }
}
