//! The asynchronous process interface.

use crate::runner::Time;
use ftss_core::{Payload, ProcessId};

/// An event-driven process in the asynchronous system.
///
/// Handlers receive a [`Ctx`] through which they send messages and arm
/// timers. All effects are buffered and applied by the runner after the
/// handler returns, with seeded delays.
pub trait AsyncProcess {
    /// The message type exchanged by this protocol.
    type Msg: Clone + std::fmt::Debug;

    /// Called once at virtual time 0 to arm the protocol's timers and send
    /// any unconditional first messages.
    ///
    /// For *self-stabilizing* protocols this must not be treated as state
    /// initialization: the process state may have been corrupted before
    /// `on_start` runs, and the protocol must work regardless. Arming
    /// periodic timers here is legitimate — timers model the paper's
    /// `when true:` forever-guards, which are program text, not state.
    fn on_start(&mut self, ctx: &mut Ctx<Self::Msg>);

    /// A message from `from` arrives.
    fn on_message(&mut self, ctx: &mut Ctx<Self::Msg>, from: ProcessId, msg: Self::Msg);

    /// A timer armed with `tag` fires.
    fn on_timer(&mut self, ctx: &mut Ctx<Self::Msg>, tag: u64);

    /// An *arbitrary forged message*, derived deterministically from
    /// `seed` — what a Byzantine scheduler may substitute for one copy of
    /// a send (see `Scheduler::forge`). `None` (the default) means the
    /// message space is opaque to the harness and forging schedulers
    /// cannot be used with this process type (the runner panics if one
    /// tries). Must be a pure function of `seed` so runs stay
    /// byte-identical.
    fn forge_message(&self, seed: u64) -> Option<Self::Msg> {
        let _ = seed;
        None
    }
}

/// The effect buffer handed to process handlers.
///
/// # Example
///
/// ```
/// use ftss_async_sim::{AsyncProcess, Ctx};
/// use ftss_core::ProcessId;
///
/// struct Echo;
/// impl AsyncProcess for Echo {
///     type Msg = u32;
///     fn on_start(&mut self, ctx: &mut Ctx<u32>) {
///         ctx.set_timer(100, 0);
///     }
///     fn on_message(&mut self, ctx: &mut Ctx<u32>, from: ProcessId, msg: u32) {
///         ctx.send(from, msg + 1);
///     }
///     fn on_timer(&mut self, ctx: &mut Ctx<u32>, _tag: u64) {
///         ctx.broadcast(0);
///     }
/// }
/// ```
#[derive(Debug)]
pub struct Ctx<M> {
    me: ProcessId,
    n: usize,
    now: Time,
    pub(crate) sends: Vec<(ProcessId, Payload<M>)>,
    pub(crate) timers: Vec<(Time, u64)>,
}

impl<M: Clone> Ctx<M> {
    /// Creates a detached context — useful for driving a handler directly
    /// in unit tests. Inside a run the runner constructs contexts itself
    /// and applies the buffered effects; effects buffered in a detached
    /// context go nowhere.
    pub fn new(me: ProcessId, n: usize, now: Time) -> Self {
        Ctx {
            me,
            n,
            now,
            sends: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// The executing process's identity.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` to `to` (including `to == me`, which is delivered like
    /// any other message).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((to, Payload::new(msg)));
    }

    /// Sends `msg` to every process, itself included (the paper's
    /// protocols assume a process receives its own broadcasts). The `n`
    /// buffered copies share one [`Payload`] allocation; the runner keeps
    /// the sharing through its event queue, so a broadcast clones the
    /// message at most once per *delivery*, and not at all while queued.
    pub fn broadcast(&mut self, msg: M) {
        let payload = Payload::new(msg);
        for i in 0..self.n {
            self.sends.push((ProcessId(i), payload.clone()));
        }
    }

    /// Arms a timer to fire `delay` time units from now, delivering `tag`
    /// to [`AsyncProcess::on_timer`].
    pub fn set_timer(&mut self, delay: Time, tag: u64) {
        self.timers
            .push((self.now.saturating_add(delay.max(1)), tag));
    }

    /// Arms a timer at an absolute virtual time (clamped to be strictly in
    /// the future). Used when forwarding effects from an embedded
    /// component's context.
    pub fn set_timer_at(&mut self, at: Time, tag: u64) {
        self.timers.push((at.max(self.now + 1), tag));
    }

    /// Drains the buffered effects: `(sends, timers)` with absolute timer
    /// times. Composite processes use this to forward an embedded
    /// component's effects into their own context, translating message
    /// types along the way. Messages are unwrapped from their shared
    /// payloads (cloning only copies that are still shared), since the
    /// caller re-wraps them after translation.
    #[allow(clippy::type_complexity)] // a (sends, timers) pair, destructured at every call site
    pub fn take_effects(&mut self) -> (Vec<(ProcessId, M)>, Vec<(Time, u64)>) {
        (
            self.sends.drain(..).map(|(to, m)| (to, m.take())).collect(),
            std::mem::take(&mut self.timers),
        )
    }

    /// Re-targets a (drained) context for reuse by the runner's dispatch
    /// loop, avoiding a fresh `Ctx` allocation per handler invocation.
    pub(crate) fn reset(&mut self, me: ProcessId, now: Time) {
        debug_assert!(self.sends.is_empty() && self.timers.is_empty());
        self.me = me;
        self.now = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_buffers_effects() {
        let mut ctx: Ctx<u8> = Ctx::new(ProcessId(1), 3, 50);
        assert_eq!(ctx.me(), ProcessId(1));
        assert_eq!(ctx.n(), 3);
        assert_eq!(ctx.now(), 50);
        ctx.send(ProcessId(0), 9);
        ctx.broadcast(7);
        ctx.set_timer(10, 42);
        assert_eq!(ctx.sends.len(), 4);
        assert_eq!(ctx.sends[0].0, ProcessId(0));
        assert_eq!(ctx.sends[0].1, 9);
        // The broadcast copies share one payload allocation.
        assert!(ctx.sends[1].1.shares_with(&ctx.sends[3].1));
        assert_eq!(ctx.timers, vec![(60, 42)]);
        let (sends, timers) = ctx.take_effects();
        assert_eq!(
            sends,
            vec![
                (ProcessId(0), 9),
                (ProcessId(0), 7),
                (ProcessId(1), 7),
                (ProcessId(2), 7)
            ]
        );
        assert_eq!(timers, vec![(60, 42)]);
    }

    #[test]
    fn zero_delay_timer_still_advances() {
        let mut ctx: Ctx<u8> = Ctx::new(ProcessId(0), 1, 5);
        ctx.set_timer(0, 1);
        assert_eq!(
            ctx.timers[0].0, 6,
            "timers must not fire at the same instant"
        );
    }
}
