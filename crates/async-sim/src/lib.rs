//! # ftss-async-sim — the paper's asynchronous system, executable
//!
//! A deterministic discrete-event simulator for §3 of Gopal & Perry
//! (PODC 1993): processes communicate by message passing with *unbounded*
//! (but finite) delays, may crash, and may start from arbitrarily corrupted
//! states. Failure detectors and the self-stabilizing consensus protocol
//! run on top of this crate.
//!
//! Model choices (documented in `DESIGN.md`):
//!
//! * **Asynchrony** is modelled by seeded random message delays. An
//!   optional *Global Stabilization Time* (GST) bounds delays afterwards —
//!   the standard partial-synchrony device used to realize the ◇-properties
//!   of Chandra–Toueg failure detectors.
//! * **Fairness**: no message is lost; every send is eventually delivered
//!   (unless the receiver crashed). This is what "eventually" properties
//!   need.
//! * **Determinism**: every run is a pure function of the configuration
//!   seed. Events are ordered by `(time, sequence number)`.
//!
//! The driving trait is [`AsyncProcess`]: `on_start` arms timers (program
//! text, not state — self-stabilizing protocols must work from any *state*,
//! but re-arming the event loop is part of the runtime), `on_message` and
//! `on_timer` advance the protocol.

pub mod process;
pub mod runner;
pub mod scheduler;

pub use process::{AsyncProcess, Ctx};
pub use runner::{AsyncConfig, AsyncRunner, RunStats, Time};
pub use scheduler::{
    AdversaryScheduler, ByzantineScheduler, DfsScheduler, Pending, PendingKind, RandomScheduler,
    Scheduler,
};
