//! The discrete-event engine.

use crate::process::{AsyncProcess, Ctx};
use crate::scheduler::{Pending, PendingKind, RandomScheduler, Scheduler};
use ftss_core::{ConfigError, Corrupt, ProcessId};
use ftss_rng::StdRng;
use ftss_telemetry::{Event as TraceEvent, NullSink, RunMode, TraceSink};

/// Virtual time, in abstract units (think microseconds).
pub type Time = u64;

/// Configuration of an asynchronous run.
#[derive(Clone, Debug)]
pub struct AsyncConfig {
    /// Seed for all delay draws.
    pub seed: u64,
    /// Minimum message delay.
    pub min_delay: Time,
    /// Maximum message delay *after* GST.
    pub max_delay: Time,
    /// Maximum message delay *before* GST (the asynchronous period; make
    /// it large to model near-unbounded delays).
    pub pre_gst_max_delay: Time,
    /// The Global Stabilization Time; delays of messages sent at or after
    /// this instant are bounded by `max_delay`.
    pub gst: Time,
    /// Crash schedule: `(process, time)`.
    pub crashes: Vec<(ProcessId, Time)>,
}

impl AsyncConfig {
    /// A well-behaved default: delays 1–10 units, GST at 0 (synchronous
    /// from the start), no crashes.
    pub fn tame(seed: u64) -> Self {
        AsyncConfig {
            seed,
            min_delay: 1,
            max_delay: 10,
            pre_gst_max_delay: 10,
            gst: 0,
            crashes: Vec::new(),
        }
    }

    /// A turbulent configuration: delays up to `pre_max` before `gst`,
    /// then 1–10.
    pub fn turbulent(seed: u64, pre_max: Time, gst: Time) -> Self {
        AsyncConfig {
            seed,
            min_delay: 1,
            max_delay: 10,
            pre_gst_max_delay: pre_max.max(1),
            gst,
            crashes: Vec::new(),
        }
    }

    /// Adds a crash.
    #[must_use]
    pub fn with_crash(mut self, p: ProcessId, at: Time) -> Self {
        self.crashes.push((p, at));
        self
    }
}

/// Statistics of a completed run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Messages delivered (excluding drops to crashed processes).
    pub messages_delivered: u64,
    /// Messages discarded because the receiver had crashed.
    pub messages_to_crashed: u64,
    /// Copies whose payload the scheduler replaced with a forgery (they
    /// still count toward `messages_delivered` when delivered).
    pub messages_forged: u64,
    /// Timer firings dispatched.
    pub timers_fired: u64,
    /// Virtual time at which the run stopped.
    pub end_time: Time,
}

/// Drives a set of [`AsyncProcess`]es deterministically.
///
/// The runner owns the processes; inspect them between/after runs via
/// [`AsyncRunner::process`] / [`AsyncRunner::processes`]. Delay assignment
/// and event order live behind the [`Scheduler`] parameter; the default
/// [`RandomScheduler`] reproduces the historical seeded behaviour exactly,
/// while the model checker substitutes enumerating or adversarial
/// schedulers (see [`crate::scheduler`]).
/// Monomorphized corruption injector: `(processes, crashed_at, now, seed)`.
type CorruptionApply<P> = fn(&mut [P], &[Option<Time>], Time, u64);

pub struct AsyncRunner<P: AsyncProcess, S = RandomScheduler<<P as AsyncProcess>::Msg>> {
    processes: Vec<P>,
    crashed_at: Vec<Option<Time>>,
    crash_reported: Vec<bool>,
    /// How many scheduled crashes have not yet been reported to a sink.
    /// Lets the per-event crash check exit in O(1) instead of scanning all
    /// `n` crash slots — at large `n` that scan dominates traced dispatch.
    crashes_unreported: usize,
    sched: S,
    cfg: AsyncConfig,
    now: Time,
    seq: u64,
    started: bool,
    stats: RunStats,
    /// Reused effect buffer handed to every handler invocation; drained
    /// into the scheduler after each call instead of allocating a fresh
    /// `Ctx`.
    scratch: Ctx<P::Msg>,
    /// Scheduled systemic failures, `(time, seed)`, kept time-sorted from
    /// `next_corruption` onwards; entries before it have fired.
    corruptions: Vec<(Time, u64)>,
    next_corruption: usize,
    /// Monomorphized corruption injector, installed by
    /// [`AsyncRunner::schedule_corruption`]. A plain fn pointer so the
    /// runner itself needs no `Corrupt` bound on `P`.
    corruption_apply: Option<CorruptionApply<P>>,
}

impl<P: AsyncProcess> AsyncRunner<P> {
    /// Creates a runner over the given processes (process `i` has id `i`),
    /// scheduled by the default seeded [`RandomScheduler`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if there are no processes, a crash names an
    /// unknown process, or `min_delay > max_delay`.
    pub fn new(processes: Vec<P>, cfg: AsyncConfig) -> Result<Self, ConfigError> {
        let sched = RandomScheduler::for_config(&cfg);
        Self::with_scheduler(processes, cfg, sched)
    }
}

impl<P: AsyncProcess + Corrupt, S: Scheduler<P::Msg>> AsyncRunner<P, S> {
    /// Schedules a systemic failure: when virtual time first reaches `at`
    /// (specifically, before the first event dispatched at time ≥ `at`),
    /// every process not yet crashed has its state replaced by a seeded
    /// arbitrary state via [`Corrupt`] — the asynchronous twin of the
    /// synchronous runner's mid-run `CorruptionSchedule`. Traced runs emit
    /// a `corruption` event whose `round` field carries the scheduled
    /// virtual time (the same round/time dual use as `crash.at`).
    ///
    /// May be called before the run or between `run_until` chunks;
    /// scheduling a corruption at a time the run has already passed fires
    /// it at the next dispatch.
    pub fn schedule_corruption(&mut self, at: Time, seed: u64) {
        self.corruptions.push((at, seed));
        // Only the unfired tail may be re-sorted; fired entries are
        // history.
        self.corruptions[self.next_corruption..].sort_by_key(|&(t, _)| t);
        self.corruption_apply = Some(corrupt_alive::<P>);
    }
}

/// Corrupts every not-yet-crashed process with one shared seeded RNG
/// stream (process order, like the synchronous runner's injection).
fn corrupt_alive<P: AsyncProcess + Corrupt>(
    processes: &mut [P],
    crashed_at: &[Option<Time>],
    now: Time,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    for (i, p) in processes.iter_mut().enumerate() {
        let crashed = crashed_at[i].is_some_and(|t| t <= now);
        if !crashed {
            p.corrupt(&mut rng);
        }
    }
}

impl<P: AsyncProcess, S: Scheduler<P::Msg>> AsyncRunner<P, S> {
    /// Creates a runner driven by an explicit scheduler (see
    /// [`crate::scheduler`] for the available strategies).
    ///
    /// # Errors
    ///
    /// Same validation as [`AsyncRunner::new`].
    pub fn with_scheduler(
        processes: Vec<P>,
        cfg: AsyncConfig,
        sched: S,
    ) -> Result<Self, ConfigError> {
        if processes.is_empty() {
            return Err(ConfigError::new("need at least one process"));
        }
        if cfg.min_delay > cfg.max_delay || cfg.min_delay > cfg.pre_gst_max_delay {
            return Err(ConfigError::new("min_delay exceeds a maximum delay"));
        }
        let n = processes.len();
        let mut crashed_at = vec![None; n];
        for &(p, t) in &cfg.crashes {
            if p.index() >= n {
                return Err(ConfigError::new(format!("crash names unknown {p}")));
            }
            crashed_at[p.index()] = Some(t);
        }
        Ok(AsyncRunner {
            processes,
            crash_reported: vec![false; crashed_at.len()],
            crashes_unreported: crashed_at.iter().filter(|c| c.is_some()).count(),
            crashed_at,
            sched,
            cfg,
            now: 0,
            seq: 0,
            started: false,
            stats: RunStats::default(),
            scratch: Ctx::new(ProcessId(0), n, 0),
            corruptions: Vec::new(),
            next_corruption: 0,
            corruption_apply: None,
        })
    }

    /// Consumes the runner, handing the scheduler back — the DFS explorer
    /// uses this to carry the choice stack from one run into the next.
    pub fn into_scheduler(self) -> S {
        self.sched
    }

    /// Read access to the scheduler mid-flight — e.g. to ask a DFS
    /// scheduler whether the run that just ended was pruned.
    pub fn scheduler(&self) -> &S {
        &self.sched
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.processes.len()
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Read access to process `p`'s protocol object.
    pub fn process(&self, p: ProcessId) -> &P {
        &self.processes[p.index()]
    }

    /// Read access to all processes.
    pub fn processes(&self) -> &[P] {
        &self.processes
    }

    /// Whether `p` has crashed by the current time.
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.crashed_at[p.index()].is_some_and(|t| t <= self.now)
    }

    /// The set of processes that will ever crash in this configuration.
    pub fn crashing_set(&self) -> Vec<ProcessId> {
        self.crashed_at
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|_| ProcessId(i)))
            .collect()
    }

    /// Statistics so far.
    pub fn stats(&self) -> RunStats {
        RunStats {
            end_time: self.now,
            ..self.stats
        }
    }

    /// Drains the scratch context's buffered effects into the scheduler,
    /// asking it for a delay and a forgery decision per send (in send
    /// order — the seeded scheduler's RNG streams depend on it). Queued
    /// copies keep sharing the broadcast payload unless forged.
    fn drain_scratch(&mut self, p: ProcessId) {
        let Self {
            processes,
            sched,
            cfg,
            scratch,
            now,
            seq,
            stats,
            ..
        } = self;
        for (to, msg) in scratch.sends.drain(..) {
            let delay = sched.delay(cfg, *now, p, to);
            let msg = match sched.forge(*now, p, to) {
                None => msg,
                Some(forge_seed) => {
                    let forged = processes[p.index()].forge_message(forge_seed).unwrap_or_else(
                        || panic!("scheduler forged a copy but the process type of {p} does not implement forge_message"),
                    );
                    stats.messages_forged += 1;
                    ftss_core::Payload::new(forged)
                }
            };
            *seq += 1;
            sched.push(Pending {
                time: *now + delay,
                seq: *seq,
                kind: PendingKind::Deliver { from: p, to, msg },
            });
        }
        for (at, tag) in scratch.timers.drain(..) {
            *seq += 1;
            sched.push(Pending {
                time: at,
                seq: *seq,
                kind: PendingKind::Timer { p, tag },
            });
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let n = self.n();
        for i in 0..n {
            let p = ProcessId(i);
            self.scratch.reset(p, self.now);
            self.processes[i].on_start(&mut self.scratch);
            self.drain_scratch(p);
        }
    }

    /// Runs until the event queue is exhausted or virtual time would pass
    /// `horizon`. Returns the statistics so far.
    pub fn run_until(&mut self, horizon: Time) -> RunStats {
        self.run_probed(horizon, Time::MAX, |_, _| {})
    }

    /// Like [`Self::run_until`], emitting structured events into `sink`.
    pub fn run_until_traced<T: TraceSink>(&mut self, horizon: Time, sink: &mut T) -> RunStats {
        self.run_probed_traced(horizon, Time::MAX, |_, _| {}, sink)
    }

    /// Like [`Self::run_until`], but invokes `probe(time, processes)`
    /// whenever virtual time crosses a multiple of `probe_interval` —
    /// the hook used by detector-property checkers to sample suspect sets
    /// over time.
    pub fn run_probed(
        &mut self,
        horizon: Time,
        probe_interval: Time,
        probe: impl FnMut(Time, &[P]),
    ) -> RunStats {
        self.run_probed_traced(horizon, probe_interval, probe, &mut NullSink)
    }

    /// The fully instrumented driver: probes like [`Self::run_probed`] and
    /// emits structured [`TraceEvent`]s into `sink` — `run_start` (once,
    /// when the system first starts), `deliver`, `drop_to_crashed`,
    /// `timer`, and `crash` (as virtual time first passes each scheduled
    /// crash). All other entry points delegate here with the zero-cost
    /// [`NullSink`]; instrumentation is guarded by [`TraceSink::enabled`],
    /// so a disabled sink constructs no events.
    pub fn run_probed_traced<T: TraceSink>(
        &mut self,
        horizon: Time,
        probe_interval: Time,
        mut probe: impl FnMut(Time, &[P]),
        sink: &mut T,
    ) -> RunStats {
        let traced = sink.enabled();
        if traced && !self.started {
            sink.emit(&TraceEvent::RunStart {
                mode: RunMode::Async,
                protocol: String::new(),
                n: self.n(),
                rounds: None,
                msg_size: Some(std::mem::size_of::<P::Msg>()),
            });
        }
        self.start_if_needed();
        let mut next_probe = if probe_interval == Time::MAX {
            Time::MAX
        } else {
            self.now.saturating_add(probe_interval)
        };
        loop {
            // Peek the time only; popping moves the event out, so no deep
            // clone of the (possibly large) queued message happens here.
            match self.peek_time() {
                Some(t) if t <= horizon => {}
                _ => break,
            }
            let ev = self.sched.pop().expect("peeked non-empty scheduler");
            while ev.time >= next_probe {
                probe(next_probe, &self.processes);
                next_probe = next_probe.saturating_add(probe_interval);
            }
            // `max` keeps time monotone even when a scheduler dispatches
            // events out of timestamp order (the DFS does); for the
            // time-ordered schedulers this is the identity.
            self.now = self.now.max(ev.time);
            // Corruption scheduled at time t strikes before the event
            // dispatched at t — corrupt-then-run, as in the synchronous
            // runner.
            self.apply_due_corruptions(sink);
            if traced {
                self.report_crashes(sink);
            }
            match ev.kind {
                PendingKind::Deliver { from, to, msg } => {
                    if self.is_crashed(to) {
                        self.stats.messages_to_crashed += 1;
                        if traced {
                            sink.emit(&TraceEvent::DropToCrashed {
                                time: self.now,
                                from,
                                to,
                            });
                        }
                        continue;
                    }
                    self.stats.messages_delivered += 1;
                    if traced {
                        sink.emit(&TraceEvent::Deliver {
                            time: self.now,
                            from,
                            to,
                        });
                    }
                    self.scratch.reset(to, self.now);
                    self.processes[to.index()].on_message(&mut self.scratch, from, msg.take());
                    self.drain_scratch(to);
                }
                PendingKind::Timer { p, tag } => {
                    if self.is_crashed(p) {
                        continue;
                    }
                    self.stats.timers_fired += 1;
                    if traced {
                        sink.emit(&TraceEvent::Timer { time: self.now, p });
                    }
                    self.scratch.reset(p, self.now);
                    self.processes[p.index()].on_timer(&mut self.scratch, tag);
                    self.drain_scratch(p);
                }
            }
        }
        self.now = self
            .now
            .max(horizon.min(self.peek_time().unwrap_or(horizon)));
        self.apply_due_corruptions(sink);
        if traced {
            self.report_crashes(sink);
        }
        self.stats()
    }

    /// Fires every scheduled corruption whose time has been reached.
    fn apply_due_corruptions<T: TraceSink>(&mut self, sink: &mut T) {
        let Some(apply) = self.corruption_apply else {
            return;
        };
        while self
            .corruptions
            .get(self.next_corruption)
            .is_some_and(|&(t, _)| t <= self.now)
        {
            let (at, seed) = self.corruptions[self.next_corruption];
            self.next_corruption += 1;
            apply(&mut self.processes, &self.crashed_at, self.now, seed);
            if sink.enabled() {
                sink.emit(&TraceEvent::Corruption { round: at, seed });
            }
        }
    }

    /// Emits a `crash` event for every process whose scheduled crash time
    /// virtual time has now reached, exactly once per process.
    fn report_crashes<T: TraceSink>(&mut self, sink: &mut T) {
        if self.crashes_unreported == 0 {
            return;
        }
        for i in 0..self.crashed_at.len() {
            if self.crash_reported[i] {
                continue;
            }
            if let Some(t) = self.crashed_at[i] {
                if t <= self.now {
                    self.crash_reported[i] = true;
                    self.crashes_unreported -= 1;
                    sink.emit(&TraceEvent::Crash {
                        at: t,
                        p: ProcessId(i),
                    });
                }
            }
        }
    }

    fn peek_time(&self) -> Option<Time> {
        self.sched.peek_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong: p0 starts, each message is returned incremented, with a
    /// periodic heartbeat timer counting firings.
    #[derive(Debug, Default)]
    struct Pinger {
        received: Vec<u32>,
        timer_count: u32,
    }

    impl AsyncProcess for Pinger {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            if ctx.me() == ProcessId(0) {
                ctx.send(ProcessId(1), 0);
            }
            ctx.set_timer(50, 7);
        }

        fn on_message(&mut self, ctx: &mut Ctx<u32>, from: ProcessId, msg: u32) {
            self.received.push(msg);
            if msg < 10 {
                ctx.send(from, msg + 1);
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<u32>, tag: u64) {
            assert_eq!(tag, 7);
            self.timer_count += 1;
            ctx.set_timer(50, 7);
        }
    }

    impl Corrupt for Pinger {
        fn corrupt<R: ftss_rng::Rng + ?Sized>(&mut self, rng: &mut R) {
            self.received.clear();
            self.timer_count = rng.gen_range(0..1_000_000u32);
        }
    }

    fn runner(cfg: AsyncConfig) -> AsyncRunner<Pinger> {
        AsyncRunner::new(vec![Pinger::default(), Pinger::default()], cfg).unwrap()
    }

    #[test]
    fn ping_pong_completes() {
        let mut r = runner(AsyncConfig::tame(1));
        r.run_until(10_000);
        let p0 = r.process(ProcessId(0));
        let p1 = r.process(ProcessId(1));
        assert_eq!(p1.received, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(p0.received, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn deterministic_per_seed() {
        let trace = |seed| {
            let mut r = runner(AsyncConfig::tame(seed));
            let stats = r.run_until(1_000);
            (stats, r.process(ProcessId(0)).timer_count)
        };
        assert_eq!(trace(5), trace(5));
        // Different seeds give different delay draws; timer counts are the
        // same but message stats may shift. At minimum the run is valid.
        let (s, _) = trace(6);
        assert!(s.messages_delivered >= 11);
    }

    #[test]
    fn timers_keep_firing_until_horizon() {
        let mut r = runner(AsyncConfig::tame(2));
        r.run_until(500);
        // ~500/50 = 10 firings per process, give or take scheduling edges.
        let c = r.process(ProcessId(0)).timer_count;
        assert!((8..=10).contains(&c), "got {c}");
    }

    #[test]
    fn crash_stops_delivery_and_timers() {
        let cfg = AsyncConfig::tame(3).with_crash(ProcessId(1), 40);
        let mut r = runner(cfg);
        let stats = r.run_until(5_000);
        assert!(r.is_crashed(ProcessId(1)));
        let p1 = r.process(ProcessId(1));
        // p1 got some but not all messages before t=40 (a full ping-pong
        // would give it 6).
        assert!(p1.received.len() < 6, "{:?}", p1.received);
        assert!(p1.timer_count == 0, "timer at t=50 is after the crash");
        assert!(stats.messages_to_crashed > 0);
        assert_eq!(r.crashing_set(), vec![ProcessId(1)]);
    }

    #[test]
    fn probe_sampling() {
        let mut r = runner(AsyncConfig::tame(4));
        let mut samples = Vec::new();
        r.run_probed(300, 100, |t, procs| {
            samples.push((t, procs[0].timer_count));
        });
        assert!(!samples.is_empty());
        // Probe times are multiples of the interval.
        for (t, _) in &samples {
            assert_eq!(t % 100, 0);
        }
        // Monotone time.
        assert!(samples.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn traced_run_matches_untraced_and_reports_crashes_once() {
        use ftss_telemetry::RecordingSink;
        let cfg = AsyncConfig::tame(3).with_crash(ProcessId(1), 40);
        let mut plain = runner(cfg.clone());
        let plain_stats = plain.run_until(5_000);

        let mut sink = RecordingSink::new(65_536);
        let mut traced = runner(cfg);
        let traced_stats = traced.run_until_traced(2_000, &mut sink);
        // Continuing a traced run keeps appending to the same stream.
        let traced_stats2 = traced.run_until_traced(5_000, &mut sink);
        assert!(traced_stats2.timers_fired >= traced_stats.timers_fired);
        assert_eq!(plain_stats, traced_stats2, "tracing must not perturb");
        assert_eq!(
            plain.process(ProcessId(0)).received,
            traced.process(ProcessId(0)).received
        );

        let events: Vec<TraceEvent> = sink.take();
        assert!(matches!(
            events.first(),
            Some(TraceEvent::RunStart {
                mode: RunMode::Async,
                n: 2,
                rounds: None,
                ..
            })
        ));
        let delivers = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Deliver { .. }))
            .count() as u64;
        let drops = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::DropToCrashed { .. }))
            .count() as u64;
        let timers = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Timer { .. }))
            .count() as u64;
        assert_eq!(delivers, traced_stats2.messages_delivered);
        assert_eq!(drops, traced_stats2.messages_to_crashed);
        assert_eq!(timers, traced_stats2.timers_fired);
        // Exactly one crash event, stamped with the scheduled time.
        let crashes: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Crash { .. }))
            .collect();
        assert_eq!(crashes.len(), 1);
        assert!(matches!(
            crashes[0],
            TraceEvent::Crash {
                at: 40,
                p: ProcessId(1)
            }
        ));
    }

    #[test]
    fn config_validation() {
        assert!(AsyncRunner::<Pinger>::new(vec![], AsyncConfig::tame(0)).is_err());
        let bad = AsyncConfig {
            min_delay: 100,
            max_delay: 10,
            ..AsyncConfig::tame(0)
        };
        assert!(AsyncRunner::new(vec![Pinger::default()], bad).is_err());
        let unknown = AsyncConfig::tame(0).with_crash(ProcessId(9), 1);
        assert!(AsyncRunner::new(vec![Pinger::default()], unknown).is_err());
    }

    #[test]
    fn gst_bounds_late_delays() {
        // Huge pre-GST delays, tight post-GST: messages sent after GST
        // arrive within max_delay.
        let cfg = AsyncConfig::turbulent(9, 5_000, 1_000);
        let mut r = runner(cfg);
        let stats = r.run_until(20_000);
        // The ping-pong eventually completes despite the turbulent prefix.
        assert!(stats.messages_delivered >= 11);
        let p1 = r.process(ProcessId(1));
        assert_eq!(*p1.received.last().unwrap(), 10);
    }

    #[test]
    fn stats_accumulate() {
        let mut r = runner(AsyncConfig::tame(11));
        let s1 = r.run_until(100);
        let s2 = r.run_until(200);
        assert!(s2.timers_fired >= s1.timers_fired);
        assert!(s2.end_time >= s1.end_time);
    }

    #[test]
    fn scheduled_corruption_fires_once_and_is_deterministic() {
        let run = |seed| {
            let mut r = runner(AsyncConfig::tame(seed));
            r.schedule_corruption(100, 42);
            r.run_until(500);
            (
                r.process(ProcessId(0)).timer_count,
                r.process(ProcessId(1)).timer_count,
                r.process(ProcessId(0)).received.clone(),
            )
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same post-corruption state");
        // The corruption replaced the timer counts with large seeded
        // garbage that real firings (≤ 10 by t=500) cannot reach.
        assert!(a.0 > 10 || a.1 > 10, "corruption visibly struck: {a:?}");
    }

    #[test]
    fn scheduled_corruption_emits_event_and_skips_crashed() {
        use ftss_telemetry::RecordingSink;
        let cfg = AsyncConfig::tame(3).with_crash(ProcessId(1), 40);
        let mut r = runner(cfg);
        r.schedule_corruption(200, 9);
        let mut sink = RecordingSink::new(65_536);
        r.run_until_traced(1_000, &mut sink);
        let events = sink.take();
        let corruptions: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Corruption { .. }))
            .collect();
        assert_eq!(corruptions.len(), 1);
        assert!(matches!(
            corruptions[0],
            TraceEvent::Corruption {
                round: 200,
                seed: 9
            }
        ));
        // p1 crashed at t=40, well before the corruption at t=200, so its
        // state is untouched (a crashed process has no state to corrupt).
        assert_eq!(r.process(ProcessId(1)).timer_count, 0);
    }

    /// A pinger whose message space the harness can forge into.
    #[derive(Debug, Default)]
    struct ForgeablePinger(Pinger);

    impl AsyncProcess for ForgeablePinger {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            self.0.on_start(ctx);
        }

        fn on_message(&mut self, ctx: &mut Ctx<u32>, from: ProcessId, msg: u32) {
            self.0.on_message(ctx, from, msg);
        }

        fn on_timer(&mut self, ctx: &mut Ctx<u32>, tag: u64) {
            self.0.on_timer(ctx, tag);
        }

        fn forge_message(&self, seed: u64) -> Option<u32> {
            // Huge values the honest ping-pong (≤ 10) never produces.
            Some(1_000_000 + (seed % 1_000_000) as u32)
        }
    }

    #[test]
    fn byzantine_scheduler_forges_traitor_copies_deterministically() {
        use crate::scheduler::ByzantineScheduler;
        let run = |forge_seed| {
            let cfg = AsyncConfig::tame(3);
            let sched = ByzantineScheduler::new(&cfg, [ProcessId(0)], 1.0, forge_seed);
            let mut r = AsyncRunner::with_scheduler(
                vec![ForgeablePinger::default(), ForgeablePinger::default()],
                cfg,
                sched,
            )
            .unwrap();
            let stats = r.run_until(5_000);
            (stats, r.process(ProcessId(1)).0.received.clone())
        };
        let (stats, received) = run(42);
        assert!(stats.messages_forged > 0, "traitor p0 forged: {stats:?}");
        // Every message p1 received from the traitor is a forgery.
        assert!(
            received.iter().all(|&m| m >= 1_000_000),
            "p1 saw only forged payloads: {received:?}"
        );
        assert_eq!((stats, received), run(42), "same seeds, same run");
    }

    #[test]
    fn byzantine_scheduler_leaves_honest_copies_alone() {
        use crate::scheduler::ByzantineScheduler;
        let cfg = AsyncConfig::tame(3);
        // p1 is the traitor; p0's sends must arrive untouched.
        let sched = ByzantineScheduler::new(&cfg, [ProcessId(1)], 1.0, 9);
        let mut r = AsyncRunner::with_scheduler(
            vec![ForgeablePinger::default(), ForgeablePinger::default()],
            cfg,
            sched,
        )
        .unwrap();
        r.run_until(5_000);
        let p1 = r.process(ProcessId(1));
        assert!(
            p1.0.received.iter().all(|&m| m < 1_000_000),
            "honest p0's payloads reached p1 genuine: {:?}",
            p1.0.received
        );
    }

    #[test]
    #[should_panic(expected = "does not implement forge_message")]
    fn forging_against_opaque_process_panics() {
        use crate::scheduler::ByzantineScheduler;
        let cfg = AsyncConfig::tame(1);
        let sched = ByzantineScheduler::new(&cfg, [ProcessId(0)], 1.0, 1);
        let mut r =
            AsyncRunner::with_scheduler(vec![Pinger::default(), Pinger::default()], cfg, sched)
                .unwrap();
        r.run_until(1_000);
    }

    #[test]
    fn corruption_between_run_chunks_applies_at_next_dispatch() {
        let mut r = runner(AsyncConfig::tame(5));
        r.run_until(300);
        let before = r.process(ProcessId(0)).timer_count;
        assert!(before <= 10, "sane pre-corruption count");
        r.schedule_corruption(300, 77);
        r.run_until(600);
        let after = r.process(ProcessId(0)).timer_count;
        assert_ne!(after, before + 6, "corruption perturbed the count");
    }
}
