//! Property-based tests of the discrete-event engine's invariants, on the
//! in-repo `ftss_rng::check` harness.

use ftss_async_sim::{AsyncConfig, AsyncProcess, AsyncRunner, Ctx};
use ftss_core::ProcessId;
use ftss_rng::check::forall;
use ftss_rng::Rng;

const CASES: u64 = 32;

/// Records every event it observes, with timestamps.
#[derive(Debug, Default, Clone, PartialEq)]
struct Recorder {
    events: Vec<(u64, String)>,
}

impl AsyncProcess for Recorder {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<u32>) {
        // Everyone broadcasts one message and arms one timer.
        ctx.broadcast(ctx.me().index() as u32);
        ctx.set_timer(37, 1);
    }

    fn on_message(&mut self, ctx: &mut Ctx<u32>, from: ProcessId, msg: u32) {
        self.events.push((ctx.now(), format!("m:{from}:{msg}")));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<u32>, tag: u64) {
        self.events.push((ctx.now(), format!("t:{tag}")));
    }
}

/// Events are observed in non-decreasing virtual-time order at every
/// process, and every broadcast copy is delivered exactly once
/// (fairness, no loss, no duplication).
#[test]
fn delivery_is_exactly_once_and_time_ordered() {
    forall(CASES, |g| {
        let n = g.gen_range(1usize..8);
        let seed: u64 = g.gen();
        let procs = vec![Recorder::default(); n];
        let mut r = AsyncRunner::new(procs, AsyncConfig::tame(seed)).unwrap();
        r.run_until(10_000);
        for i in 0..n {
            let p = r.process(ProcessId(i));
            // Time-ordered.
            assert!(p.events.windows(2).all(|w| w[0].0 <= w[1].0));
            // Exactly one copy from each sender (including itself).
            for j in 0..n {
                let count = p
                    .events
                    .iter()
                    .filter(|(_, e)| e == &format!("m:p{j}:{j}"))
                    .count();
                assert_eq!(count, 1, "p{} heard p{} {} times", i, j, count);
            }
            // Exactly one timer firing.
            let timers = p.events.iter().filter(|(_, e)| e.starts_with("t:")).count();
            assert_eq!(timers, 1);
        }
    });
}

/// Same seed ⇒ identical event sequences; the engine is deterministic.
#[test]
fn runs_are_reproducible() {
    forall(CASES, |g| {
        let n = g.gen_range(1usize..6);
        let seed: u64 = g.gen();
        let go = || {
            let mut r =
                AsyncRunner::new(vec![Recorder::default(); n], AsyncConfig::tame(seed)).unwrap();
            r.run_until(5_000);
            (0..n)
                .map(|i| r.process(ProcessId(i)).events.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(go(), go());
    });
}

/// Delays respect the configured bounds after GST.
#[test]
fn post_gst_delays_are_bounded() {
    forall(CASES, |g| {
        let seed: u64 = g.gen();
        let max_delay = g.gen_range(2u64..50);
        let cfg = AsyncConfig {
            seed,
            min_delay: 1,
            max_delay,
            pre_gst_max_delay: max_delay,
            gst: 0,
            crashes: vec![],
        };
        let mut r = AsyncRunner::new(vec![Recorder::default(); 3], cfg).unwrap();
        r.run_until(10_000);
        // All broadcasts were sent at t=0, so every delivery time is a
        // valid delay draw.
        for i in 0..3 {
            for (t, e) in &r.process(ProcessId(i)).events {
                if e.starts_with("m:") {
                    assert!((1..=max_delay).contains(t), "delivery at t={t}");
                }
            }
        }
    });
}

/// A crashed process observes nothing after its crash time, and the
/// stats account for copies that died with it.
#[test]
fn crash_cuts_off_observation() {
    forall(CASES, |g| {
        let seed: u64 = g.gen();
        let crash_t = g.gen_range(1u64..40);
        let cfg = AsyncConfig::tame(seed).with_crash(ProcessId(0), crash_t);
        let mut r = AsyncRunner::new(vec![Recorder::default(); 3], cfg).unwrap();
        let stats = r.run_until(10_000);
        for (t, _) in &r.process(ProcessId(0)).events {
            assert!(*t < crash_t);
        }
        let observed_msgs = r
            .process(ProcessId(0))
            .events
            .iter()
            .filter(|(_, e)| e.starts_with("m:"))
            .count() as u64;
        // 3 broadcast copies were destined for p0 (timers are separate).
        assert_eq!(
            observed_msgs + stats.messages_to_crashed,
            3,
            "every copy to p0 is either observed or counted as lost"
        );
    });
}
