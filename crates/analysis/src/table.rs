//! Fixed-width table rendering for experiment output.

use std::fmt;

/// A simple left-aligned text table. The experiment binaries print these;
/// `EXPERIMENTS.md` records them verbatim.
///
/// # Example
///
/// ```
/// use ftss_analysis::Table;
///
/// let mut t = Table::new(vec!["n", "stab"]);
/// t.row(vec!["4".into(), "1".into()]);
/// let s = t.to_string();
/// assert!(s.contains("| n | stab |"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as RFC-4180-style CSV: a header line followed by
    /// one line per row. Cells containing a comma, a double quote, or a
    /// newline are wrapped in double quotes with inner quotes doubled;
    /// everything else is emitted verbatim.
    pub fn to_csv(&self) -> String {
        fn cell(out: &mut String, c: &str) {
            if c.contains([',', '"', '\n', '\r']) {
                out.push('"');
                for ch in c.chars() {
                    if ch == '"' {
                        out.push('"');
                    }
                    out.push(ch);
                }
                out.push('"');
            } else {
                out.push_str(c);
            }
        }
        let mut out = String::new();
        for line in std::iter::once(&self.headers).chain(self.rows.iter()) {
            for (i, c) in line.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                cell(&mut out, c);
            }
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", c, width = w[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for width in &w {
            write!(f, "{:-<1$}|", "", width + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["x".into(), "100".into()])
            .row(vec!["longer".into(), "2".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| name   | v   |"));
        assert!(lines[1].starts_with("|--------|"));
        assert!(lines[2].contains("| x      | 100 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        Table::new(vec!["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_quotes_only_what_needs_quoting() {
        let mut t = Table::new(vec!["name", "note"]);
        t.row(vec!["plain".into(), "a,b".into()])
            .row(vec!["quo\"te".into(), "line\nbreak".into()]);
        assert_eq!(
            t.to_csv(),
            "name,note\nplain,\"a,b\"\n\"quo\"\"te\",\"line\nbreak\"\n"
        );
    }

    #[test]
    fn csv_of_empty_table_is_just_the_header() {
        let t = Table::new(vec!["x", "y"]);
        assert_eq!(t.to_csv(), "x,y\n");
    }
}
