//! Empirical stabilization-time measurement.

use ftss_core::{CoterieTimeline, History, Problem};

/// The result of measuring a run's stabilization time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StabilizationMeasurement {
    /// The smallest `r` such that the problem holds on the final stable
    /// window once its first `r` rounds are skipped; `None` if the problem
    /// never becomes satisfied within the window.
    pub stabilization_rounds: Option<usize>,
    /// First prefix length of the final coterie-stable window.
    pub window_start: usize,
    /// Last prefix length of the final window (= history length).
    pub window_end: usize,
}

impl StabilizationMeasurement {
    /// The duration of the final stable window.
    pub fn window_len(&self) -> usize {
        self.window_end - self.window_start + 1
    }
}

/// Measures the empirical stabilization time of a recorded run against a
/// problem `Σ`: within the final coterie-stable window `[a, b]`, the
/// smallest `s` such that `Σ(H[a−1+s .. b], F)` is satisfied.
///
/// For `Σ`s that are conjunctions over rounds (all specs in this
/// repository), this is exactly the Definition-2.4 stabilization time
/// restricted to the run's final window.
///
/// Returns `None` if the history is empty.
pub fn measured_stabilization_time<S, M>(
    history: &History<S, M>,
    problem: &dyn Problem<S, M>,
) -> Option<StabilizationMeasurement> {
    let timeline = CoterieTimeline::compute(history);
    let w = timeline.final_window()?;
    let faulty = history.faulty_upto(w.to_len);
    let mut stab = None;
    for s in 0..w.duration() {
        let start = w.from_len - 1 + s;
        if problem
            .check(history.slice(start, w.to_len), &faulty)
            .is_ok()
        {
            stab = Some(s);
            break;
        }
    }
    Some(StabilizationMeasurement {
        stabilization_rounds: stab,
        window_start: w.from_len,
        window_end: w.to_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftss_core::{ProcessId, RateAgreementSpec};
    use ftss_protocols::RoundAgreement;
    use ftss_sync_sim::{NoFaults, RunConfig, SilentProcess, SyncRunner};

    #[test]
    fn round_agreement_measures_at_most_one() {
        for seed in 0..20 {
            let out = SyncRunner::new(RoundAgreement)
                .run(&mut NoFaults, &RunConfig::corrupted(4, 10, seed))
                .unwrap();
            let m = measured_stabilization_time(&out.history, &RateAgreementSpec::new())
                .expect("non-empty");
            let s = m.stabilization_rounds.expect("stabilizes");
            assert!(s <= 1, "seed {seed}: measured {s}");
            assert_eq!(m.window_start, 1);
            assert_eq!(m.window_end, 10);
            assert_eq!(m.window_len(), 10);
        }
    }

    #[test]
    fn clean_run_measures_zero() {
        let out = SyncRunner::new(RoundAgreement)
            .run(&mut NoFaults, &RunConfig::clean(3, 6))
            .unwrap();
        let m = measured_stabilization_time(&out.history, &RateAgreementSpec::new()).unwrap();
        assert_eq!(m.stabilization_rounds, Some(0));
    }

    #[test]
    fn window_reflects_coterie_change() {
        // p0 silent 3 rounds then joins: the final window starts when the
        // coterie absorbs p0.
        let mut adv = SilentProcess::new(ProcessId(0), 3);
        let out = SyncRunner::new(RoundAgreement)
            .run(&mut adv, &RunConfig::corrupted(3, 10, 5))
            .unwrap();
        let m = measured_stabilization_time(&out.history, &RateAgreementSpec::new()).unwrap();
        assert!(m.window_start >= 4, "window starts after the merge: {m:?}");
        assert!(m.stabilization_rounds.is_some());
    }

    #[test]
    fn empty_history_yields_none() {
        let h: History<(), ()> = History::new(2);
        assert!(measured_stabilization_time(&h, &RateAgreementSpec::new()).is_none());
    }
}
