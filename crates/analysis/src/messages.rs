//! Message-complexity accounting over recorded histories.

use ftss_core::{DeliveryOutcome, History};

/// Counts of point-to-point message copies in a run (self-deliveries are
/// not counted: they are local).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Copies emitted (all outcomes).
    pub copies: usize,
    /// Copies delivered.
    pub delivered: usize,
    /// Copies lost to send omissions.
    pub dropped_by_sender: usize,
    /// Copies lost to receive omissions.
    pub dropped_by_receiver: usize,
    /// Copies lost to crashes (either side).
    pub lost_to_crashes: usize,
    /// Copies a Byzantine sender replaced with a forged payload (these
    /// arrive, so they are also counted as delivered).
    pub forged: usize,
}

impl MessageStats {
    /// Delivered fraction of emitted copies (0 when nothing was sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.copies == 0 {
            0.0
        } else {
            self.delivered as f64 / self.copies as f64
        }
    }
}

/// Tallies message copies across an entire history.
pub fn message_stats<S, M>(history: &History<S, M>) -> MessageStats {
    let mut stats = MessageStats::default();
    for rh in history.rounds() {
        for rec in rh.records() {
            for s in rec.sent() {
                stats.copies += 1;
                match s.outcome {
                    DeliveryOutcome::Delivered => stats.delivered += 1,
                    DeliveryOutcome::Forged => {
                        stats.delivered += 1;
                        stats.forged += 1;
                    }
                    DeliveryOutcome::DroppedBySender => stats.dropped_by_sender += 1,
                    DeliveryOutcome::DroppedByReceiver => stats.dropped_by_receiver += 1,
                    DeliveryOutcome::ReceiverCrashed | DeliveryOutcome::SenderCrashed => {
                        stats.lost_to_crashes += 1
                    }
                    // Timing faults still deliver (late / twice): counted
                    // as delivered, never as a loss.
                    DeliveryOutcome::Delayed | DeliveryOutcome::Duplicated => stats.delivered += 1,
                }
            }
        }
    }
    stats
}

/// Copies emitted per round, for shape plots.
pub fn copies_per_round<S, M>(history: &History<S, M>) -> Vec<usize> {
    history
        .rounds()
        .iter()
        .map(|rh| rh.records().map(|r| r.sent_len()).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftss_core::ProcessId;
    use ftss_protocols::RoundAgreement;
    use ftss_sync_sim::{NoFaults, RandomOmission, RunConfig, SyncRunner};

    #[test]
    fn clean_run_counts_n_squared_minus_n_per_round() {
        let n = 4;
        let rounds = 5;
        let out = SyncRunner::new(RoundAgreement)
            .run(&mut NoFaults, &RunConfig::clean(n, rounds))
            .unwrap();
        let stats = message_stats(&out.history);
        assert_eq!(stats.copies, n * (n - 1) * rounds);
        assert_eq!(stats.delivered, stats.copies);
        assert_eq!(stats.delivery_ratio(), 1.0);
        assert_eq!(copies_per_round(&out.history), vec![n * (n - 1); rounds]);
    }

    #[test]
    fn omissions_show_up_in_the_right_bucket() {
        let mut adv = RandomOmission::new([ProcessId(0)], 1.0, 0);
        let out = SyncRunner::new(RoundAgreement)
            .run(&mut adv, &RunConfig::clean(3, 2))
            .unwrap();
        let stats = message_stats(&out.history);
        // p0's 2 copies per round all dropped by sender; copies to p0 by
        // the others are receive-omissions? No: RandomOmission attributes
        // to the faulty side; p0 is the only faulty process, so copies TO
        // p0 are also dropped, attributed to p0 as receiver.
        assert_eq!(stats.dropped_by_sender, 4);
        assert_eq!(stats.dropped_by_receiver, 4);
        assert_eq!(stats.delivered, stats.copies - 8);
        assert!(stats.delivery_ratio() < 1.0);
    }

    #[test]
    fn empty_history_zeroes() {
        let h: ftss_core::History<(), ()> = ftss_core::History::new(2);
        let stats = message_stats(&h);
        assert_eq!(stats, MessageStats::default());
        assert_eq!(stats.delivery_ratio(), 0.0);
        assert!(copies_per_round(&h).is_empty());
    }
}
