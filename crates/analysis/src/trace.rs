//! Derived telemetry: events that are *facts about a recorded history*
//! rather than live simulator observations.
//!
//! The simulators emit operational events (sends, deliveries, crashes) as
//! they happen; the coterie (Definition 2.3) and the stabilization time
//! (Definition 2.4) are properties of whole prefixes, so they are
//! extracted here, post-run, and appended to the trace. `ftss trace`
//! streams the live events first and these afterwards, so a trace file is
//! self-contained: replaying it through [`Metrics`] recovers both the
//! traffic totals and the paper-level measurements.

use ftss_core::{CoterieTimeline, History, Problem};
use ftss_telemetry::{Event, Metrics};

use crate::stabilization::measured_stabilization_time;
use crate::table::Table;

/// The coterie-membership changes of a history, as telemetry events.
///
/// Emits one [`Event::CoterieChange`] for the first prefix (the coterie's
/// formation) and one per prefix length at which the coterie differs from
/// the previous prefix's. Members are listed in process order.
pub fn coterie_events<S, M>(history: &History<S, M>) -> Vec<Event> {
    let timeline = CoterieTimeline::compute(history);
    let mut out = Vec::new();
    let mut prev = None;
    for (i, c) in timeline.coteries().iter().enumerate() {
        if prev != Some(c) {
            out.push(Event::CoterieChange {
                round: (i + 1) as u64,
                size: c.len(),
                members: c.iter().collect(),
            });
            prev = Some(c);
        }
    }
    out
}

/// The measured stabilization of a history against a problem `Σ`, as a
/// telemetry event.
///
/// Returns `Some(Event::Stabilization { round, rounds })` when the
/// problem predicate holds on the final coterie-stable window after
/// skipping `rounds` rounds — `round` is the 1-based prefix length from
/// which it holds. Returns `None` for an empty history or a run that
/// never satisfies `Σ` within the window.
pub fn stabilization_event<S, M>(
    history: &History<S, M>,
    problem: &dyn Problem<S, M>,
) -> Option<Event> {
    let m = measured_stabilization_time(history, problem)?;
    let s = m.stabilization_rounds?;
    Some(Event::Stabilization {
        round: (m.window_start + s) as u64,
        rounds: s as u64,
    })
}

/// Renders an aggregated [`Metrics`] as a two-column table for `ftss
/// stats`. Rows irrelevant to the trace's mode (e.g. async virtual time
/// in a synchronous trace) are omitted.
pub fn metrics_table(m: &Metrics) -> Table {
    let mut t = Table::new(vec!["metric", "value"]);
    let mut push = |k: &str, v: String| {
        t.row(vec![k.to_string(), v]);
    };
    if let Some(mode) = m.mode {
        push("mode", format!("{mode:?}").to_lowercase());
    }
    if !m.protocol.is_empty() {
        push("protocol", m.protocol.clone());
    }
    if m.n > 0 {
        push("processes", m.n.to_string());
    }
    if m.rounds > 0 {
        push("rounds", m.rounds.to_string());
    }
    if m.end_time > 0 {
        push("end_time", m.end_time.to_string());
    }
    if m.sent > 0 || m.delivered > 0 {
        push("copies_sent", m.sent.to_string());
        push("copies_delivered", m.delivered.to_string());
        push("dropped_by_sender", m.dropped_by_sender.to_string());
        push("dropped_by_receiver", m.dropped_by_receiver.to_string());
        push("dropped_by_crash", m.dropped_by_crash.to_string());
        if m.msg_size > 0 {
            push("delivered_volume", m.delivered_volume().to_string());
        }
    }
    if m.async_delivered > 0 || m.async_dropped_to_crashed > 0 {
        push("messages_delivered", m.async_delivered.to_string());
        push(
            "messages_to_crashed",
            m.async_dropped_to_crashed.to_string(),
        );
    }
    if m.timers_fired > 0 {
        push("timers_fired", m.timers_fired.to_string());
    }
    push("corruptions", m.corruptions.to_string());
    push("crashes", m.crashes.len().to_string());
    if let Some(size) = m.final_coterie_size() {
        push("final_coterie_size", size.to_string());
        push("coterie_changes", m.coterie_changes().to_string());
    }
    match m.rounds_to_stabilization() {
        Some(s) => push("stabilization_rounds", s.to_string()),
        None => push("stabilization_rounds", "-".to_string()),
    }
    if m.suspicions_raised > 0 || m.suspicions_cleared > 0 {
        push("suspicions_raised", m.suspicions_raised.to_string());
        push("suspicions_cleared", m.suspicions_cleared.to_string());
    }
    if m.decisions > 0 {
        push("decisions", m.decisions.to_string());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftss_core::{ProcessId, RateAgreementSpec};
    use ftss_protocols::RoundAgreement;
    use ftss_sync_sim::{NoFaults, RunConfig, SilentProcess, SyncRunner};

    #[test]
    fn clean_run_forms_one_coterie_and_stabilizes_at_zero() {
        let out = SyncRunner::new(RoundAgreement)
            .run(&mut NoFaults, &RunConfig::clean(3, 6))
            .unwrap();
        let events = coterie_events(&out.history);
        assert_eq!(events.len(), 1, "{events:?}");
        assert!(matches!(
            &events[0],
            Event::CoterieChange { round: 1, size: 3, members } if members.len() == 3
        ));
        let stab = stabilization_event(&out.history, &RateAgreementSpec::new()).unwrap();
        assert_eq!(
            stab,
            Event::Stabilization {
                round: 1,
                rounds: 0
            }
        );
    }

    #[test]
    fn silent_process_changes_the_coterie_mid_run() {
        let mut adv = SilentProcess::new(ProcessId(0), 3);
        let out = SyncRunner::new(RoundAgreement)
            .run(&mut adv, &RunConfig::corrupted(3, 10, 5))
            .unwrap();
        let events = coterie_events(&out.history);
        assert!(
            events.len() >= 2,
            "expected a membership change: {events:?}"
        );
        // Every change event round is a strictly increasing prefix length.
        let rounds: Vec<u64> = events
            .iter()
            .map(|e| match e {
                Event::CoterieChange { round, .. } => *round,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert!(rounds.windows(2).all(|w| w[0] < w[1]));
        // p0 is absorbed eventually: the final coterie contains it.
        match events.last().unwrap() {
            Event::CoterieChange { members, .. } => {
                assert!(members.contains(&ProcessId(0)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn empty_history_yields_no_derived_events() {
        let h: History<(), ()> = History::new(2);
        assert!(coterie_events(&h).is_empty());
        assert!(stabilization_event(&h, &RateAgreementSpec::new()).is_none());
    }

    #[test]
    fn derived_events_feed_metrics_and_the_table() {
        let out = SyncRunner::new(RoundAgreement)
            .run(&mut NoFaults, &RunConfig::corrupted(4, 8, 7))
            .unwrap();
        let mut events = coterie_events(&out.history);
        events.extend(stabilization_event(&out.history, &RateAgreementSpec::new()));
        let m = Metrics::from_events(events.iter());
        assert_eq!(m.final_coterie_size(), Some(4));
        assert!(m.rounds_to_stabilization().unwrap() <= 1);
        let table = metrics_table(&m).to_string();
        assert!(table.contains("final_coterie_size"), "{table}");
        assert!(table.contains("stabilization_rounds"), "{table}");
    }
}
