//! Executable renditions of Theorems 1 and 2.
//!
//! Impossibility theorems quantify over *all* protocols, so they cannot be
//! "run" directly; what can be run is the paper's proof scenarios against
//! representative protocol archetypes, showing each archetype impaled on
//! one horn of the dilemma:
//!
//! **Theorem 1** (no finite stabilization time under Tentative
//! Definition 1). For a candidate stabilization time `r`, two histories
//! refute each archetype:
//!
//! * *History A* — two processes with divergent corrupted counters, fully
//!   partitioned for exactly `r` rounds by omission failures attributed to
//!   `p0`, then failure-free. Σ (Assumption 1) must hold on the `r`-suffix
//!   with faulty = `{p0}` — so the correct `p1` must advance its counter
//!   by exactly 1 per round from round `r + 1` on.
//! * *History B* — the same divergent corruption, **no failures at all**
//!   (the proof's scenario 3). Σ must hold on the `r`-suffix with faulty =
//!   ∅ — so the counters must agree.
//!
//! A protocol that reconciles counters (Figure 1's round agreement) passes
//! B but breaks A's rate condition at the merge; a protocol that never
//! reconciles ([`StubbornCounter`]) passes A but never agrees in B; a
//! self-checking protocol ([`HaltOnDisagreement`], [`EagerHalt`]) freezes
//! a correct process's counter. Every archetype is refuted for every `r`.
//!
//! **Theorem 2** (no uniform protocol ftss-solves anything). In the
//! permanently-partitioned history, a uniform protocol must get the faulty
//! process to halt or agree (Assumption 2); but whatever triggers the halt
//! also halts a correct process in the indistinguishable run, violating
//! Assumption 1's rate condition.

use ftss_core::{
    Corrupt, HistorySlice, Problem, ProcessId, ProcessSet, RateAgreementSpec, RoundCounter,
    Violation,
};
use ftss_protocols::round_agreement::RoundAgreementState;
use ftss_protocols::RoundAgreement;
use ftss_rng::Rng;
use ftss_sync_sim::{
    Adversary, Inbox, OmissionSide, ProtocolCtx, RunConfig, ScriptedOmission, SyncProtocol,
    SyncRunner,
};

/// State shared by the impossibility archetypes: a counter and a halt flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterHaltState {
    /// The round variable `c_p`.
    pub c: RoundCounter,
    /// Whether the process has self-halted.
    pub halted: bool,
}

impl Corrupt for CounterHaltState {
    fn corrupt<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.c.corrupt(rng);
        // Halt flags are protocol bookkeeping; the scenarios install their
        // own counters, so keep corruption on the counter only here — the
        // drivers set divergent values deterministically.
        let _ = rng;
        self.halted = false;
    }
}

/// Archetype 1: increments its counter and ignores everyone — maintains
/// the rate condition, never re-establishes agreement.
#[derive(Clone, Copy, Debug, Default)]
pub struct StubbornCounter;

impl SyncProtocol for StubbornCounter {
    type State = CounterHaltState;
    type Msg = u64;

    fn name(&self) -> &str {
        "stubborn-counter"
    }

    fn init_state(&self, _ctx: &ProtocolCtx) -> CounterHaltState {
        CounterHaltState {
            c: RoundCounter::INITIAL,
            halted: false,
        }
    }

    fn broadcast(&self, _ctx: &ProtocolCtx, s: &CounterHaltState) -> u64 {
        s.c.get()
    }

    fn step(&self, _ctx: &ProtocolCtx, s: &mut CounterHaltState, _inbox: &Inbox<u64>) {
        s.c = s.c.next();
    }

    fn round_counter(&self, s: &CounterHaltState) -> Option<RoundCounter> {
        Some(s.c)
    }
}

/// Archetype 2 (uniform, lazily self-checking): behaves like round
/// agreement, but **halts** the moment it observes a counter different
/// from its own — "halting before doing any harm" (Assumption 2's
/// technique).
#[derive(Clone, Copy, Debug, Default)]
pub struct HaltOnDisagreement;

impl SyncProtocol for HaltOnDisagreement {
    type State = CounterHaltState;
    type Msg = u64;

    fn name(&self) -> &str {
        "halt-on-disagreement"
    }

    fn init_state(&self, _ctx: &ProtocolCtx) -> CounterHaltState {
        CounterHaltState {
            c: RoundCounter::INITIAL,
            halted: false,
        }
    }

    fn sends(&self, _ctx: &ProtocolCtx, s: &CounterHaltState) -> bool {
        !s.halted
    }

    fn is_halted(&self, _ctx: &ProtocolCtx, s: &CounterHaltState) -> bool {
        s.halted
    }

    fn broadcast(&self, _ctx: &ProtocolCtx, s: &CounterHaltState) -> u64 {
        s.c.get()
    }

    fn step(&self, _ctx: &ProtocolCtx, s: &mut CounterHaltState, inbox: &Inbox<u64>) {
        if s.halted {
            return;
        }
        if inbox.iter().any(|(_, &c)| c != s.c.get()) {
            s.halted = true;
            return;
        }
        s.c = s.c.next();
    }

    fn round_counter(&self, s: &CounterHaltState) -> Option<RoundCounter> {
        Some(s.c)
    }
}

/// Archetype 3 (uniform, eagerly self-checking): halts as soon as a round
/// passes in which it did not hear from every process.
#[derive(Clone, Copy, Debug, Default)]
pub struct EagerHalt;

impl SyncProtocol for EagerHalt {
    type State = CounterHaltState;
    type Msg = u64;

    fn name(&self) -> &str {
        "eager-halt"
    }

    fn init_state(&self, _ctx: &ProtocolCtx) -> CounterHaltState {
        CounterHaltState {
            c: RoundCounter::INITIAL,
            halted: false,
        }
    }

    fn sends(&self, _ctx: &ProtocolCtx, s: &CounterHaltState) -> bool {
        !s.halted
    }

    fn is_halted(&self, _ctx: &ProtocolCtx, s: &CounterHaltState) -> bool {
        s.halted
    }

    fn broadcast(&self, _ctx: &ProtocolCtx, s: &CounterHaltState) -> u64 {
        s.c.get()
    }

    fn step(&self, ctx: &ProtocolCtx, s: &mut CounterHaltState, inbox: &Inbox<u64>) {
        if s.halted {
            return;
        }
        if inbox.len() < ctx.n {
            s.halted = true;
            return;
        }
        let max = inbox.iter().map(|(_, &c)| c).max().unwrap_or(s.c.get());
        s.c = RoundCounter::new(max).next();
    }

    fn round_counter(&self, s: &CounterHaltState) -> Option<RoundCounter> {
        Some(s.c)
    }
}

/// The archetypes driven through the Theorem-1 histories.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Archetype {
    /// Figure 1's round agreement (reconciles counters).
    RoundAgreement,
    /// [`StubbornCounter`].
    Stubborn,
    /// [`HaltOnDisagreement`].
    HaltOnDisagreement,
    /// [`EagerHalt`].
    EagerHalt,
}

impl Archetype {
    /// All archetypes, for sweeping.
    pub fn all() -> [Archetype; 4] {
        [
            Archetype::RoundAgreement,
            Archetype::Stubborn,
            Archetype::HaltOnDisagreement,
            Archetype::EagerHalt,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Archetype::RoundAgreement => "round-agreement (Fig 1)",
            Archetype::Stubborn => "stubborn-counter",
            Archetype::HaltOnDisagreement => "halt-on-disagreement",
            Archetype::EagerHalt => "eager-halt",
        }
    }
}

/// The verdicts of the two Theorem-1 histories for one archetype.
#[derive(Clone, Debug)]
pub struct Theorem1Outcome {
    /// Which archetype was driven.
    pub archetype: Archetype,
    /// The candidate stabilization time.
    pub r: usize,
    /// Violation found in History A (partition of length `r`, faulty
    /// = `{p0}`), if any.
    pub history_a: Option<Violation>,
    /// Violation found in History B (failure-free, faulty = ∅), if any.
    pub history_b: Option<Violation>,
}

impl Theorem1Outcome {
    /// Theorem 1 predicts every archetype fails at least one history.
    pub fn refuted(&self) -> bool {
        self.history_a.is_some() || self.history_b.is_some()
    }
}

/// A fully-partitioning adversary for 2 processes: all copies between
/// `p0` and `p1` are dropped in rounds `1..=rounds`, attributed to `p0`
/// (send omissions outbound, receive omissions inbound — `p0` is the one
/// faulty process).
fn partition_adversary(rounds: u64) -> ScriptedOmission {
    let mut adv = ScriptedOmission::new();
    for r in 1..=rounds {
        adv.drop_at(r, ProcessId(0), ProcessId(1), OmissionSide::Sender);
        adv.drop_at(r, ProcessId(1), ProcessId(0), OmissionSide::Receiver);
    }
    adv
}

/// Runs one archetype through both Theorem-1 histories with candidate
/// stabilization time `r`, divergent corrupted counters
/// (`c_p0 = high`, `c_p1 = low`), and `extra` failure-free rounds after
/// the partition.
pub fn theorem1_demo(archetype: Archetype, r: usize, extra: usize) -> Theorem1Outcome {
    let total = r + extra;
    let spec = RateAgreementSpec::new();

    // Drive whichever archetype through a closure to erase the state type.
    fn drive<P>(
        protocol: P,
        adversary: &mut dyn Adversary,
        total: usize,
        suffix: usize,
        faulty0: bool,
        high_low: (u64, u64),
    ) -> Option<Violation>
    where
        P: SyncProtocol,
        P::State: Corrupt + CounterInstall,
    {
        let out = SyncRunner::new(InstallCounters {
            inner: protocol,
            values: high_low,
        })
        .run(adversary, &RunConfig::clean(2, total))
        .expect("valid config");
        let n = 2;
        let faulty = if faulty0 {
            ProcessSet::from_iter_n(n, [ProcessId(0)])
        } else {
            ProcessSet::empty(n)
        };
        let spec = RateAgreementSpec::new();
        let slice = out.history.suffix(suffix);
        Problem::<P::State, P::Msg>::check(&spec, slice, &faulty).err()
    }

    let (a, b) = match archetype {
        Archetype::RoundAgreement => (
            drive(
                RoundAgreement,
                &mut partition_adversary(r as u64),
                total,
                r,
                true,
                (1 << 20, 1),
            ),
            drive(
                RoundAgreement,
                &mut ftss_sync_sim::NoFaults,
                total,
                r,
                false,
                (1 << 20, 1),
            ),
        ),
        Archetype::Stubborn => (
            drive(
                StubbornCounter,
                &mut partition_adversary(r as u64),
                total,
                r,
                true,
                (1 << 20, 1),
            ),
            drive(
                StubbornCounter,
                &mut ftss_sync_sim::NoFaults,
                total,
                r,
                false,
                (1 << 20, 1),
            ),
        ),
        Archetype::HaltOnDisagreement => (
            drive(
                HaltOnDisagreement,
                &mut partition_adversary(r as u64),
                total,
                r,
                true,
                (1 << 20, 1),
            ),
            drive(
                HaltOnDisagreement,
                &mut ftss_sync_sim::NoFaults,
                total,
                r,
                false,
                (1 << 20, 1),
            ),
        ),
        Archetype::EagerHalt => (
            drive(
                EagerHalt,
                &mut partition_adversary(r as u64),
                total,
                r,
                true,
                (1 << 20, 1),
            ),
            drive(
                EagerHalt,
                &mut ftss_sync_sim::NoFaults,
                total,
                r,
                false,
                (1 << 20, 1),
            ),
        ),
    };
    let _ = spec;
    Theorem1Outcome {
        archetype,
        r,
        history_a: a,
        history_b: b,
    }
}

/// Installing divergent counters: the scenarios need *specific* corrupted
/// counters (`p0` high, `p1` low), not random ones.
trait CounterInstall {
    fn install(&mut self, c: u64);
}

impl CounterInstall for RoundAgreementState {
    fn install(&mut self, c: u64) {
        self.c = RoundCounter::new(c);
    }
}

impl CounterInstall for CounterHaltState {
    fn install(&mut self, c: u64) {
        self.c = RoundCounter::new(c);
        self.halted = false;
    }
}

/// A wrapper protocol that rewrites initial counters to the scenario's
/// divergent values — a *deterministic* systemic failure.
struct InstallCounters<P> {
    inner: P,
    values: (u64, u64),
}

impl<P> SyncProtocol for InstallCounters<P>
where
    P: SyncProtocol,
    P::State: CounterInstall,
{
    type State = P::State;
    type Msg = P::Msg;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn init_state(&self, ctx: &ProtocolCtx) -> P::State {
        let mut s = self.inner.init_state(ctx);
        s.install(if ctx.me == ProcessId(0) {
            self.values.0
        } else {
            self.values.1
        });
        s
    }

    fn sends(&self, ctx: &ProtocolCtx, state: &P::State) -> bool {
        self.inner.sends(ctx, state)
    }

    fn is_halted(&self, ctx: &ProtocolCtx, state: &P::State) -> bool {
        self.inner.is_halted(ctx, state)
    }

    fn broadcast(&self, ctx: &ProtocolCtx, state: &P::State) -> P::Msg {
        self.inner.broadcast(ctx, state)
    }

    fn step(&self, ctx: &ProtocolCtx, state: &mut P::State, inbox: &Inbox<P::Msg>) {
        self.inner.step(ctx, state, inbox)
    }

    fn round_counter(&self, state: &P::State) -> Option<RoundCounter> {
        self.inner.round_counter(state)
    }
}

/// The Theorem-2 verdicts for one uniform archetype in the permanently
/// partitioned history.
#[derive(Clone, Debug)]
pub struct Theorem2Outcome {
    /// Which archetype was driven.
    pub archetype: Archetype,
    /// Did the faulty process (`p0`) halt?
    pub faulty_halted: bool,
    /// Did the correct process (`p1`) halt?
    pub correct_halted: bool,
    /// Final counters `(c_p0, c_p1)`.
    pub counters: (u64, u64),
}

impl Theorem2Outcome {
    /// Assumption 2 (uniformity): the faulty process halted or agrees.
    pub fn uniformity_holds(&self) -> bool {
        self.faulty_halted || self.counters.0 == self.counters.1
    }

    /// Assumption 1's rate condition for the correct process requires it
    /// to keep counting — a halted correct process violates it.
    pub fn assumption1_holds(&self) -> bool {
        !self.correct_halted
    }

    /// Theorem 2 predicts one of the two must fail.
    pub fn refuted(&self) -> bool {
        !(self.uniformity_holds() && self.assumption1_holds())
    }
}

/// Runs a uniform archetype through the permanently-partitioned history
/// (`rounds` rounds, all communication between the two processes dropped,
/// `p0` faulty) with divergent installed counters.
///
/// # Panics
///
/// Panics if called with a non-uniform archetype
/// ([`Archetype::RoundAgreement`] or [`Archetype::Stubborn`] do not
/// restrict faulty processes, so Theorem 2 does not apply to them).
pub fn theorem2_demo(archetype: Archetype, rounds: usize) -> Theorem2Outcome {
    fn drive<P>(protocol: P, archetype: Archetype, rounds: usize) -> Theorem2Outcome
    where
        P: SyncProtocol<State = CounterHaltState>,
    {
        let mut adv = partition_adversary(rounds as u64);
        let out = SyncRunner::new(InstallCounters {
            inner: protocol,
            values: (1 << 20, 1),
        })
        .run(&mut adv, &RunConfig::clean(2, rounds))
        .expect("valid config");
        let s0 = out.final_states[0].as_ref().unwrap();
        let s1 = out.final_states[1].as_ref().unwrap();
        Theorem2Outcome {
            archetype,
            faulty_halted: s0.halted,
            correct_halted: s1.halted,
            counters: (s0.c.get(), s1.c.get()),
        }
    }
    match archetype {
        Archetype::HaltOnDisagreement => drive(HaltOnDisagreement, archetype, rounds),
        Archetype::EagerHalt => drive(EagerHalt, archetype, rounds),
        other => panic!("{other:?} is not a uniform protocol"),
    }
}

/// Convenience re-export for checking slices directly in experiment code.
pub fn assumption1_violation<S, M>(
    slice: HistorySlice<'_, S, M>,
    faulty: &ProcessSet,
) -> Option<Violation> {
    RateAgreementSpec::new().check(slice, faulty).err()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_every_archetype_refuted_for_every_r() {
        for r in [1usize, 2, 5, 10] {
            for archetype in Archetype::all() {
                let out = theorem1_demo(archetype, r, 6);
                assert!(
                    out.refuted(),
                    "{} with r={r} passed both histories — Theorem 1 contradicted",
                    archetype.name()
                );
            }
        }
    }

    #[test]
    fn theorem1_round_agreement_fails_a_passes_b() {
        let out = theorem1_demo(Archetype::RoundAgreement, 3, 6);
        let a = out.history_a.expect("history A must be violated");
        assert_eq!(a.rule, "rate", "the merge breaks the rate condition: {a}");
        assert!(out.history_b.is_none(), "failure-free history must pass");
    }

    #[test]
    fn theorem1_stubborn_passes_a_fails_b() {
        let out = theorem1_demo(Archetype::Stubborn, 3, 6);
        assert!(out.history_a.is_none(), "stubborn keeps perfect rate");
        let b = out.history_b.expect("history B must be violated");
        assert_eq!(b.rule, "agreement", "{b}");
    }

    #[test]
    fn theorem2_halt_on_disagreement_violates_uniformity() {
        let out = theorem2_demo(Archetype::HaltOnDisagreement, 8);
        assert!(
            !out.faulty_halted,
            "p0 saw no disagreement, so never halted"
        );
        assert_ne!(out.counters.0, out.counters.1);
        assert!(!out.uniformity_holds());
        assert!(out.refuted());
    }

    #[test]
    fn theorem2_eager_halt_kills_the_correct_process() {
        let out = theorem2_demo(Archetype::EagerHalt, 8);
        assert!(out.correct_halted, "p1 misses p0's messages and halts");
        assert!(!out.assumption1_holds());
        assert!(out.refuted());
    }

    #[test]
    #[should_panic(expected = "not a uniform protocol")]
    fn theorem2_rejects_non_uniform_archetypes() {
        theorem2_demo(Archetype::Stubborn, 4);
    }

    #[test]
    fn archetype_names() {
        for a in Archetype::all() {
            assert!(!a.name().is_empty());
        }
    }

    #[test]
    fn install_counters_sets_divergent_values() {
        let proto = InstallCounters {
            inner: StubbornCounter,
            values: (100, 7),
        };
        let s0 = proto.init_state(&ProtocolCtx::new(ProcessId(0), 2));
        let s1 = proto.init_state(&ProtocolCtx::new(ProcessId(1), 2));
        assert_eq!(s0.c.get(), 100);
        assert_eq!(s1.c.get(), 7);
    }
}
