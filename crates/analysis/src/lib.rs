//! # ftss-analysis — measurement and impossibility harnesses
//!
//! Experiment-side machinery shared by the benchmark suite and the
//! integration tests:
//!
//! * [`stabilization`] — measures the *empirical* stabilization time of a
//!   run: the smallest `r` for which the Definition-2.4 obligation of the
//!   final coterie-stable window is satisfied. E1 and E2 sweep this
//!   against the paper's claimed bounds (1 for Figure 1; `final_round`
//!   (+`final_round` for suspects) for Figure 3).
//! * [`trace`] — derived telemetry: coterie-change and stabilization
//!   events extracted from a recorded history, plus the metrics table
//!   behind `ftss stats`.
//! * [`impossibility`] — executable renditions of the paper's two negative
//!   results. Theorem 1: under the rejected *Tentative Definition 1*,
//!   every protocol either violates agreement forever or violates the rate
//!   condition at the communication merge — exhibited on three protocol
//!   archetypes. Theorem 2: a *uniform* protocol (one that halts rather
//!   than let a faulty process disagree) kills a correct process in an
//!   indistinguishable run.
//! * [`table`] — fixed-width table rendering for the experiment binaries,
//!   so `cargo bench` output matches the rows recorded in
//!   `EXPERIMENTS.md`.

pub mod impossibility;
pub mod messages;
pub mod stabilization;
pub mod table;
pub mod trace;

pub use impossibility::{
    theorem1_demo, theorem2_demo, Archetype, EagerHalt, HaltOnDisagreement, StubbornCounter,
    Theorem1Outcome, Theorem2Outcome,
};
pub use messages::{copies_per_round, message_stats, MessageStats};
pub use stabilization::{measured_stabilization_time, StabilizationMeasurement};
pub use table::Table;
pub use trace::{coterie_events, metrics_table, stabilization_event};
