//! Storm plans: which scenarios soak, under which storm cycle, at which
//! seeds.
//!
//! A plan expands to a list of independent [`SoakCell`]s — pure
//! functions of `(scenario, seed, epochs)` — that the engine fans out
//! over the sweep executor. Five plans ship:
//!
//! * **default** — the storm cycle at moderate intensity (60% omission
//!   storms, untargeted asynchronous scheduling),
//! * **worst-case** — 90% omission storms, a fully poisoned detector
//!   start, and an [`ftss::async_sim::AdversaryScheduler`] inflating
//!   every delay that touches a victim for the first half of the run,
//! * **large-n** — one round-agreement cell at `n = 4096` on a
//!   *windowed* history: the engine streams the run through
//!   `SyncRunner::run_streaming`, verifying each epoch the moment its
//!   last round lands, before the window evicts it. This is the soak
//!   that proves the struct-of-arrays engine sustains thousands of
//!   processes without retaining the full execution,
//! * **churn** — the synchronous scenarios under [`churn_cycle`]
//!   (joins entering with arbitrary state, clean leaves),
//! * **restart** — served round agreement through [`restart_cycle`]:
//!   crash–restart kills with damaged-snapshot respawns, cycled against
//!   the partial-synchrony proxy's delay/duplicate/reorder storms. The
//!   only plan that soaks `ftss-serve` itself.

use ftss::core::{ProcessId, StormKind, StormPhase};
use ftss::sync_sim::CorruptionSchedule;

/// Which execution a soak cell drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoakScenario {
    /// Round agreement on the synchronous simulator: Theorem 3's
    /// one-round recovery after every storm epoch.
    RoundAgreement,
    /// The compiled `Π⁺` (FloodSet, `f = 1`) on the synchronous
    /// simulator: Theorem 4's `2·final_round + 2` recovery bound.
    Compiled,
    /// The self-stabilizing ◇S detector on the asynchronous simulator:
    /// Theorem 5's settle properties per epoch.
    Detector,
    /// Round agreement on the `ftss-serve` socket runtime (`mem`
    /// transport): one crash–restart episode at the head of the run plus
    /// the partial-synchrony proxy's timing storms cycled per epoch,
    /// each epoch checked with the Theorem 3 window oracle measured from
    /// the last perturbation that can touch it.
    Restart,
}

impl SoakScenario {
    /// Stable name, used in cell labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            SoakScenario::RoundAgreement => "round-agreement",
            SoakScenario::Compiled => "compiled-floodset",
            SoakScenario::Detector => "strong-detector",
            SoakScenario::Restart => "serve-restart",
        }
    }
}

/// One independent soak execution: a pure function of this struct.
#[derive(Clone, Debug)]
pub struct SoakCell {
    /// Which execution.
    pub scenario: SoakScenario,
    /// Report label, `scenario/vK`.
    pub label: String,
    /// System size.
    pub n: usize,
    /// The cell's seed (drives corruption, omission draws and the
    /// asynchronous scheduler).
    pub seed: u64,
    /// Storm epochs to run.
    pub epochs: usize,
    /// Whether the worst-case intensities apply.
    pub worst_case: bool,
    /// History retention in rounds: `None` keeps the full execution
    /// (default and worst-case plans), `Some(w)` streams the run through
    /// a `w`-round window (the large-n plan). A windowed cell is
    /// verified *in-stream*, epoch by epoch.
    pub history_window: Option<usize>,
    /// Whether the cell cycles the membership-churn storms
    /// ([`churn_cycle`]: joins entering with arbitrary state, clean
    /// leaves) instead of the stock [`storm_cycle`].
    pub churn: bool,
}

/// System size of the large-n plan's single cell.
pub const LARGE_N: usize = 4096;
/// History retention of the large-n plan, in rounds. Must cover one full
/// epoch of the engine's round-agreement geometry so every recovery
/// window is still resident when its epoch closes.
pub const LARGE_N_WINDOW: usize = 12;

/// A named soak plan.
#[derive(Clone, Debug)]
pub struct SoakPlan {
    /// Plan name (`default`, `worst-case`, `large-n`, `churn` or
    /// `restart`).
    pub name: &'static str,
    /// Storm epochs per cell.
    pub epochs: usize,
    /// Base seed; cell seeds derive from it.
    pub seed: u64,
    /// Whether the worst-case intensities apply.
    pub worst_case: bool,
    /// Whether the cells cycle membership churn ([`churn_cycle`]).
    pub churn: bool,
}

/// Seed variants per scenario in a plan.
const VARIANTS: u64 = 2;

impl SoakPlan {
    /// The default plan: moderate storm intensity.
    pub fn default_plan(epochs: usize, seed: u64) -> Self {
        SoakPlan {
            name: "default",
            epochs,
            seed,
            worst_case: false,
            churn: false,
        }
    }

    /// The worst-case plan: maximum admissible storm intensity.
    pub fn worst_case(epochs: usize, seed: u64) -> Self {
        SoakPlan {
            name: "worst-case",
            epochs,
            seed,
            worst_case: true,
            churn: false,
        }
    }

    /// The large-n plan: one windowed round-agreement cell at
    /// [`LARGE_N`] processes.
    pub fn large_n(epochs: usize, seed: u64) -> Self {
        SoakPlan {
            name: "large-n",
            epochs,
            seed,
            worst_case: false,
            churn: false,
        }
    }

    /// The churn plan: the synchronous scenarios under [`churn_cycle`] —
    /// joins entering with seeded arbitrary state, clean leaves.
    pub fn churn(epochs: usize, seed: u64) -> Self {
        SoakPlan {
            name: "churn",
            epochs,
            seed,
            worst_case: false,
            churn: true,
        }
    }

    /// The restart plan: served round agreement under [`restart_cycle`] —
    /// crash–restart kills, damaged-snapshot respawns, and the timing
    /// storms of the partial-synchrony proxy.
    pub fn restart(epochs: usize, seed: u64) -> Self {
        SoakPlan {
            name: "restart",
            epochs,
            seed,
            worst_case: false,
            churn: false,
        }
    }

    /// Looks a plan up by CLI name.
    ///
    /// # Errors
    ///
    /// Unknown plan names.
    pub fn by_name(name: &str, epochs: usize, seed: u64) -> Result<Self, String> {
        match name {
            "default" => Ok(Self::default_plan(epochs, seed)),
            "worst-case" => Ok(Self::worst_case(epochs, seed)),
            "large-n" => Ok(Self::large_n(epochs, seed)),
            "churn" => Ok(Self::churn(epochs, seed)),
            "restart" => Ok(Self::restart(epochs, seed)),
            other => Err(format!(
                "unknown soak plan {other:?} (expected 'default', 'worst-case', 'large-n', 'churn' or 'restart')"
            )),
        }
    }

    /// Expands the plan into its cells, in canonical report order.
    pub fn cells(&self) -> Vec<SoakCell> {
        if self.name == "large-n" {
            return vec![SoakCell {
                scenario: SoakScenario::RoundAgreement,
                label: format!("{}/n{LARGE_N}", SoakScenario::RoundAgreement.name()),
                n: LARGE_N,
                seed: self.seed,
                epochs: self.epochs,
                worst_case: false,
                history_window: Some(LARGE_N_WINDOW),
                churn: false,
            }];
        }
        if self.name == "restart" {
            // Two seed variants of one served scenario: the soak runs the
            // real router (mem transport), so cells stay small.
            return (0..VARIANTS)
                .map(|v| SoakCell {
                    scenario: SoakScenario::Restart,
                    label: format!("{}/v{v}", SoakScenario::Restart.name()),
                    n: 3,
                    seed: self.seed.wrapping_add(v.wrapping_mul(0x9e37_79b9)),
                    epochs: self.epochs,
                    worst_case: false,
                    history_window: None,
                    churn: false,
                })
                .collect();
        }
        // Churn renders as synchronous omission windows plus targeted
        // join corruption; the asynchronous detector cell has no churn
        // rendering, so the churn plan covers the two sync scenarios.
        let scenarios: &[(SoakScenario, usize)] = if self.churn {
            &[
                (SoakScenario::RoundAgreement, 6),
                (SoakScenario::Compiled, 5),
            ]
        } else {
            &[
                (SoakScenario::RoundAgreement, 6),
                (SoakScenario::Compiled, 5),
                (SoakScenario::Detector, 5),
            ]
        };
        let mut out = Vec::with_capacity(scenarios.len() * VARIANTS as usize);
        for &(scenario, n) in scenarios {
            for v in 0..VARIANTS {
                let tag = if self.churn { "churn-v" } else { "v" };
                out.push(SoakCell {
                    scenario,
                    label: format!("{}/{tag}{v}", scenario.name()),
                    n,
                    seed: self.seed.wrapping_add(v.wrapping_mul(0x9e37_79b9)),
                    epochs: self.epochs,
                    worst_case: self.worst_case,
                    history_window: None,
                    churn: self.churn,
                });
            }
        }
        out
    }
}

/// The synchronous storm cycle: epoch `e` fires `cycle[e % 4]`. Every
/// epoch *additionally* opens with a corruption burst, so the pure
/// [`StormKind::CorruptionBurst`] slot is the burst-only epoch.
pub fn storm_cycle(worst_case: bool) -> [StormKind; 4] {
    let percent = if worst_case { 90 } else { 60 };
    [
        StormKind::Partition,
        StormKind::OmissionStorm { percent },
        StormKind::SilenceChurn,
        StormKind::CorruptionBurst,
    ]
}

/// The membership-churn storm cycle: epoch `e` fires `cycle[e % 4]`.
/// Joins and leaves replace the partition/silence slots; every epoch
/// still opens with a corruption burst, and the joiners *additionally*
/// get a targeted corruption in the round after their window closes —
/// the arbitrary entry state of a process joining mid-execution.
pub fn churn_cycle(worst_case: bool) -> [StormKind; 4] {
    let percent = if worst_case { 90 } else { 60 };
    [
        StormKind::Join,
        StormKind::OmissionStorm { percent },
        StormKind::Leave,
        StormKind::CorruptionBurst,
    ]
}

/// The restart plan's storm cycle: epoch `e` fires `cycle[e % 4]`. The
/// timing kinds render through the socket runtime's partial-synchrony
/// proxy (the simulators ignore them); every epoch still opens with a
/// corruption burst, and the engine's restart cell *additionally* kills
/// and respawns its victim once, inside epoch 0.
pub fn restart_cycle() -> [StormKind; 4] {
    [
        StormKind::Delay { rounds: 2 },
        StormKind::Duplicate,
        StormKind::Reorder,
        StormKind::CorruptionBurst,
    ]
}

/// The corruption seed for a cell's epoch `e` burst: distinct per epoch,
/// derived only from the cell seed, so reports are reproducible.
pub fn burst_seed(cell_seed: u64, epoch: u64) -> u64 {
    cell_seed ^ 0xb127 ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The corruption seed for epoch `e`'s joiners' arbitrary entry state —
/// distinct from every [`burst_seed`] (different xor tag), derived only
/// from the cell seed.
pub fn join_seed(cell_seed: u64, epoch: u64) -> u64 {
    cell_seed ^ 0x9014 ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Epoch geometry of the synchronous storm cycle, in rounds: each epoch
/// opens with a [`storm_len`](Self::storm_len)-round storm and recovers
/// for the remainder of its [`epoch_len`](Self::epoch_len) rounds.
///
/// This is the replay seam for substrates other than the soak engine
/// (the socket runtime, ad-hoc CLI runs): the same geometry plus
/// [`storm_program`] reproduces a cell's exact storm schedule anywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StormGeometry {
    /// Rounds the storm stays open, counted from the epoch's first round.
    pub storm_len: u64,
    /// Total rounds per epoch (storm + recovery window).
    pub epoch_len: u64,
}

impl StormGeometry {
    /// The soak engine's synchronous geometry: 3 storm rounds per
    /// 12-round epoch.
    pub fn engine_default() -> Self {
        StormGeometry {
            storm_len: 3,
            epoch_len: 12,
        }
    }

    /// First round of epoch `e`'s storm (1-based).
    pub fn storm_start(&self, e: usize) -> u64 {
        e as u64 * self.epoch_len + 1
    }

    /// Last round of epoch `e`'s storm.
    pub fn storm_end(&self, e: usize) -> u64 {
        e as u64 * self.epoch_len + self.storm_len
    }

    /// Last round of epoch `e` (recovery window included).
    pub fn epoch_end(&self, e: usize) -> u64 {
        (e as u64 + 1) * self.epoch_len
    }
}

/// A cell's storm program — the mid-run corruption schedule plus the
/// copy-dropping storm phases, one cycle entry per epoch. A pure function
/// of `(seed, epochs, worst_case, geometry)`, so any substrate replaying
/// it injects byte-identical perturbation.
///
/// Epoch 0's corruption burst is **not** scheduled here: it is the run's
/// initial corruption (seed [`burst_seed`]`(seed, 0)`), which the caller
/// injects at round 1; scheduling it again would corrupt round 1 twice.
pub fn storm_program(
    seed: u64,
    epochs: usize,
    worst_case: bool,
    geom: &StormGeometry,
) -> (CorruptionSchedule, Vec<StormPhase>) {
    storm_program_for(seed, epochs, &storm_cycle(worst_case), geom, &[])
}

/// [`storm_program`] generalized to an explicit cycle and victim set: the
/// seam the churn plan uses. A [`StormKind::Join`] epoch additionally
/// schedules a *targeted* corruption of the victims in the round after
/// the storm window closes (seed [`join_seed`]) — the joiners' arbitrary
/// entry state. The stock cycles contain no `Join`, so
/// `storm_program_for(seed, epochs, &storm_cycle(w), geom, &[])` is
/// byte-identical to the original `storm_program`.
pub fn storm_program_for(
    seed: u64,
    epochs: usize,
    cycle: &[StormKind],
    geom: &StormGeometry,
    victims: &[ProcessId],
) -> (CorruptionSchedule, Vec<StormPhase>) {
    let mut schedule = CorruptionSchedule::none();
    let mut phases = Vec::new();
    for e in 0..epochs {
        let kind = cycle[e % cycle.len()];
        let start = geom.storm_start(e);
        if e > 0 {
            schedule = schedule.at(start, burst_seed(seed, e as u64));
        }
        if kind == StormKind::Join {
            schedule = schedule.at_targeted(
                geom.storm_end(e) + 1,
                join_seed(seed, e as u64),
                victims.iter().copied(),
            );
        }
        // Copy-dropping kinds arm the storm adversary; timing kinds arm
        // the socket runtime's partial-synchrony proxy. The stock cycles
        // contain no timing kinds, so their programs are byte-identical
        // to the pre-restart seam.
        if kind.drops_copies() || kind.is_timing() {
            phases.push(StormPhase::new(start, geom.storm_end(e), kind));
        }
    }
    (schedule, phases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_resolve_by_name() {
        let p = SoakPlan::by_name("default", 4, 7).unwrap();
        assert!(!p.worst_case);
        assert_eq!(p.epochs, 4);
        let p = SoakPlan::by_name("worst-case", 2, 0).unwrap();
        assert!(p.worst_case);
        let p = SoakPlan::by_name("large-n", 3, 9).unwrap();
        assert_eq!(p.name, "large-n");
        assert!(SoakPlan::by_name("gentle", 1, 0).is_err());
    }

    #[test]
    fn large_n_plan_is_one_windowed_cell() {
        let cells = SoakPlan::large_n(2, 5).cells();
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        assert_eq!(c.scenario, SoakScenario::RoundAgreement);
        assert_eq!(c.n, LARGE_N);
        assert_eq!(c.history_window, Some(LARGE_N_WINDOW));
        assert_eq!(c.label, "round-agreement/n4096");
        assert!(!c.worst_case);
        // The stock plans keep the full history — their cells (and thus
        // their report bytes) are untouched by the windowed machinery.
        for c in SoakPlan::default_plan(1, 0)
            .cells()
            .iter()
            .chain(SoakPlan::worst_case(1, 0).cells().iter())
        {
            assert_eq!(c.history_window, None);
        }
    }

    #[test]
    fn cells_cover_every_scenario_with_distinct_labels() {
        let cells = SoakPlan::default_plan(3, 11).cells();
        assert_eq!(cells.len(), 6);
        let labels: std::collections::BTreeSet<&str> =
            cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels.len(), cells.len(), "labels must be unique");
        for s in [
            SoakScenario::RoundAgreement,
            SoakScenario::Compiled,
            SoakScenario::Detector,
        ] {
            assert!(cells.iter().any(|c| c.scenario == s), "{s:?} missing");
        }
        for c in &cells {
            assert_eq!(c.epochs, 3);
        }
    }

    #[test]
    fn churn_plan_cycles_join_and_leave() {
        let p = SoakPlan::by_name("churn", 4, 3).unwrap();
        assert!(p.churn);
        let cells = p.cells();
        // Sync scenarios only — the async detector has no churn rendering.
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.churn));
        assert!(cells.iter().all(|c| c.label.contains("churn-v")));
        assert!(cells.iter().all(|c| c.scenario != SoakScenario::Detector));
        let cycle = churn_cycle(false);
        assert_eq!(cycle[0], StormKind::Join);
        assert_eq!(cycle[2], StormKind::Leave);
        // The stock plans are untouched.
        assert!(!SoakPlan::default_plan(1, 0).cells()[0].churn);
    }

    #[test]
    fn restart_plan_is_two_served_cells_with_timing_phases() {
        let p = SoakPlan::by_name("restart", 4, 3).unwrap();
        assert_eq!(p.name, "restart");
        let cells = p.cells();
        assert_eq!(cells.len(), 2);
        for (v, c) in cells.iter().enumerate() {
            assert_eq!(c.scenario, SoakScenario::Restart);
            assert_eq!(c.label, format!("serve-restart/v{v}"));
            assert_eq!(c.n, 3);
            assert_eq!(c.epochs, 4);
            assert_eq!(c.history_window, None);
            assert!(!c.churn && !c.worst_case);
        }
        assert_ne!(cells[0].seed, cells[1].seed);
        // The restart cycle's timing kinds become storm phases for the
        // partial-synchrony proxy; only the burst epoch has no phase.
        let geom = StormGeometry::engine_default();
        let (_, phases) = storm_program_for(3, 4, &restart_cycle(), &geom, &[]);
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].kind, StormKind::Delay { rounds: 2 });
        assert_eq!(phases[1].kind, StormKind::Duplicate);
        assert_eq!(phases[2].kind, StormKind::Reorder);
        assert!(phases.iter().all(|ph| ph.kind.is_timing()));
        // The stock cycles contain no timing kinds, so their programs are
        // untouched by the widened phase condition.
        let (_, stock) = storm_program_for(3, 8, &storm_cycle(false), &geom, &[]);
        assert!(stock.iter().all(|ph| ph.kind.drops_copies()));
    }

    #[test]
    fn join_epochs_schedule_targeted_entry_corruption() {
        let geom = StormGeometry::engine_default();
        let victims = [ProcessId(0), ProcessId(1)];
        let (schedule, phases) = storm_program_for(7, 4, &churn_cycle(false), &geom, &victims);
        // Epoch 0 is the Join epoch: entry corruption in the round after
        // its storm closes, targeting exactly the victims.
        let entry_round = geom.storm_end(0) + 1;
        let targeted: Vec<_> = schedule.targeted_for(entry_round).collect();
        assert_eq!(targeted.len(), 1);
        assert_eq!(targeted[0].0, join_seed(7, 0));
        assert_eq!(targeted[0].1, &victims);
        // Epoch 2 (Leave) is clean: silence only, no entry corruption.
        assert_eq!(schedule.targeted_for(geom.storm_end(2) + 1).count(), 0);
        // Join, omission, and leave all drop copies; the burst does not.
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].kind, StormKind::Join);
        assert_eq!(phases[2].kind, StormKind::Leave);
        // The stock program is byte-identical through the new seam.
        let (s1, p1) = storm_program(9, 4, true, &geom);
        let (s2, p2) = storm_program_for(9, 4, &storm_cycle(true), &geom, &[]);
        assert_eq!(p1, p2);
        assert_eq!(
            s1.seed_for(geom.storm_start(1)),
            s2.seed_for(geom.storm_start(1))
        );
        assert_eq!(s1.targeted_for(1).count(), 0);
    }

    #[test]
    fn burst_seeds_differ_across_epochs() {
        let seeds: std::collections::BTreeSet<u64> = (0..16).map(|e| burst_seed(5, e)).collect();
        assert_eq!(seeds.len(), 16);
    }

    #[test]
    fn worst_case_cycle_raises_omission_intensity() {
        let default = storm_cycle(false);
        let worst = storm_cycle(true);
        assert!(matches!(
            default[1],
            StormKind::OmissionStorm { percent: 60 }
        ));
        assert!(matches!(worst[1], StormKind::OmissionStorm { percent: 90 }));
        assert!(default[0].drops_copies());
        assert!(!default[3].drops_copies());
    }
}
