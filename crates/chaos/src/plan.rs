//! Storm plans: which scenarios soak, under which storm cycle, at which
//! seeds.
//!
//! A plan expands to a list of independent [`SoakCell`]s — pure
//! functions of `(scenario, seed, epochs)` — that the engine fans out
//! over the sweep executor. Three plans ship:
//!
//! * **default** — the storm cycle at moderate intensity (60% omission
//!   storms, untargeted asynchronous scheduling),
//! * **worst-case** — 90% omission storms, a fully poisoned detector
//!   start, and an [`ftss::async_sim::AdversaryScheduler`] inflating
//!   every delay that touches a victim for the first half of the run,
//! * **large-n** — one round-agreement cell at `n = 4096` on a
//!   *windowed* history: the engine streams the run through
//!   `SyncRunner::run_streaming`, verifying each epoch the moment its
//!   last round lands, before the window evicts it. This is the soak
//!   that proves the struct-of-arrays engine sustains thousands of
//!   processes without retaining the full execution.

use ftss::core::{StormKind, StormPhase};
use ftss::sync_sim::CorruptionSchedule;

/// Which execution a soak cell drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoakScenario {
    /// Round agreement on the synchronous simulator: Theorem 3's
    /// one-round recovery after every storm epoch.
    RoundAgreement,
    /// The compiled `Π⁺` (FloodSet, `f = 1`) on the synchronous
    /// simulator: Theorem 4's `2·final_round + 2` recovery bound.
    Compiled,
    /// The self-stabilizing ◇S detector on the asynchronous simulator:
    /// Theorem 5's settle properties per epoch.
    Detector,
}

impl SoakScenario {
    /// Stable name, used in cell labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            SoakScenario::RoundAgreement => "round-agreement",
            SoakScenario::Compiled => "compiled-floodset",
            SoakScenario::Detector => "strong-detector",
        }
    }
}

/// One independent soak execution: a pure function of this struct.
#[derive(Clone, Debug)]
pub struct SoakCell {
    /// Which execution.
    pub scenario: SoakScenario,
    /// Report label, `scenario/vK`.
    pub label: String,
    /// System size.
    pub n: usize,
    /// The cell's seed (drives corruption, omission draws and the
    /// asynchronous scheduler).
    pub seed: u64,
    /// Storm epochs to run.
    pub epochs: usize,
    /// Whether the worst-case intensities apply.
    pub worst_case: bool,
    /// History retention in rounds: `None` keeps the full execution
    /// (default and worst-case plans), `Some(w)` streams the run through
    /// a `w`-round window (the large-n plan). A windowed cell is
    /// verified *in-stream*, epoch by epoch.
    pub history_window: Option<usize>,
}

/// System size of the large-n plan's single cell.
pub const LARGE_N: usize = 4096;
/// History retention of the large-n plan, in rounds. Must cover one full
/// epoch of the engine's round-agreement geometry so every recovery
/// window is still resident when its epoch closes.
pub const LARGE_N_WINDOW: usize = 12;

/// A named soak plan.
#[derive(Clone, Debug)]
pub struct SoakPlan {
    /// Plan name (`default`, `worst-case` or `large-n`).
    pub name: &'static str,
    /// Storm epochs per cell.
    pub epochs: usize,
    /// Base seed; cell seeds derive from it.
    pub seed: u64,
    /// Whether the worst-case intensities apply.
    pub worst_case: bool,
}

/// Seed variants per scenario in a plan.
const VARIANTS: u64 = 2;

impl SoakPlan {
    /// The default plan: moderate storm intensity.
    pub fn default_plan(epochs: usize, seed: u64) -> Self {
        SoakPlan {
            name: "default",
            epochs,
            seed,
            worst_case: false,
        }
    }

    /// The worst-case plan: maximum admissible storm intensity.
    pub fn worst_case(epochs: usize, seed: u64) -> Self {
        SoakPlan {
            name: "worst-case",
            epochs,
            seed,
            worst_case: true,
        }
    }

    /// The large-n plan: one windowed round-agreement cell at
    /// [`LARGE_N`] processes.
    pub fn large_n(epochs: usize, seed: u64) -> Self {
        SoakPlan {
            name: "large-n",
            epochs,
            seed,
            worst_case: false,
        }
    }

    /// Looks a plan up by CLI name.
    ///
    /// # Errors
    ///
    /// Unknown plan names.
    pub fn by_name(name: &str, epochs: usize, seed: u64) -> Result<Self, String> {
        match name {
            "default" => Ok(Self::default_plan(epochs, seed)),
            "worst-case" => Ok(Self::worst_case(epochs, seed)),
            "large-n" => Ok(Self::large_n(epochs, seed)),
            other => Err(format!(
                "unknown soak plan {other:?} (expected 'default', 'worst-case' or 'large-n')"
            )),
        }
    }

    /// Expands the plan into its cells, in canonical report order.
    pub fn cells(&self) -> Vec<SoakCell> {
        if self.name == "large-n" {
            return vec![SoakCell {
                scenario: SoakScenario::RoundAgreement,
                label: format!("{}/n{LARGE_N}", SoakScenario::RoundAgreement.name()),
                n: LARGE_N,
                seed: self.seed,
                epochs: self.epochs,
                worst_case: false,
                history_window: Some(LARGE_N_WINDOW),
            }];
        }
        let scenarios = [
            (SoakScenario::RoundAgreement, 6),
            (SoakScenario::Compiled, 5),
            (SoakScenario::Detector, 5),
        ];
        let mut out = Vec::with_capacity(scenarios.len() * VARIANTS as usize);
        for (scenario, n) in scenarios {
            for v in 0..VARIANTS {
                out.push(SoakCell {
                    scenario,
                    label: format!("{}/v{v}", scenario.name()),
                    n,
                    seed: self.seed.wrapping_add(v.wrapping_mul(0x9e37_79b9)),
                    epochs: self.epochs,
                    worst_case: self.worst_case,
                    history_window: None,
                });
            }
        }
        out
    }
}

/// The synchronous storm cycle: epoch `e` fires `cycle[e % 4]`. Every
/// epoch *additionally* opens with a corruption burst, so the pure
/// [`StormKind::CorruptionBurst`] slot is the burst-only epoch.
pub fn storm_cycle(worst_case: bool) -> [StormKind; 4] {
    let percent = if worst_case { 90 } else { 60 };
    [
        StormKind::Partition,
        StormKind::OmissionStorm { percent },
        StormKind::SilenceChurn,
        StormKind::CorruptionBurst,
    ]
}

/// The corruption seed for a cell's epoch `e` burst: distinct per epoch,
/// derived only from the cell seed, so reports are reproducible.
pub fn burst_seed(cell_seed: u64, epoch: u64) -> u64 {
    cell_seed ^ 0xb127 ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Epoch geometry of the synchronous storm cycle, in rounds: each epoch
/// opens with a [`storm_len`](Self::storm_len)-round storm and recovers
/// for the remainder of its [`epoch_len`](Self::epoch_len) rounds.
///
/// This is the replay seam for substrates other than the soak engine
/// (the socket runtime, ad-hoc CLI runs): the same geometry plus
/// [`storm_program`] reproduces a cell's exact storm schedule anywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StormGeometry {
    /// Rounds the storm stays open, counted from the epoch's first round.
    pub storm_len: u64,
    /// Total rounds per epoch (storm + recovery window).
    pub epoch_len: u64,
}

impl StormGeometry {
    /// The soak engine's synchronous geometry: 3 storm rounds per
    /// 12-round epoch.
    pub fn engine_default() -> Self {
        StormGeometry {
            storm_len: 3,
            epoch_len: 12,
        }
    }

    /// First round of epoch `e`'s storm (1-based).
    pub fn storm_start(&self, e: usize) -> u64 {
        e as u64 * self.epoch_len + 1
    }

    /// Last round of epoch `e`'s storm.
    pub fn storm_end(&self, e: usize) -> u64 {
        e as u64 * self.epoch_len + self.storm_len
    }

    /// Last round of epoch `e` (recovery window included).
    pub fn epoch_end(&self, e: usize) -> u64 {
        (e as u64 + 1) * self.epoch_len
    }
}

/// A cell's storm program — the mid-run corruption schedule plus the
/// copy-dropping storm phases, one cycle entry per epoch. A pure function
/// of `(seed, epochs, worst_case, geometry)`, so any substrate replaying
/// it injects byte-identical perturbation.
///
/// Epoch 0's corruption burst is **not** scheduled here: it is the run's
/// initial corruption (seed [`burst_seed`]`(seed, 0)`), which the caller
/// injects at round 1; scheduling it again would corrupt round 1 twice.
pub fn storm_program(
    seed: u64,
    epochs: usize,
    worst_case: bool,
    geom: &StormGeometry,
) -> (CorruptionSchedule, Vec<StormPhase>) {
    let cycle = storm_cycle(worst_case);
    let mut schedule = CorruptionSchedule::none();
    let mut phases = Vec::new();
    for e in 0..epochs {
        let kind = cycle[e % cycle.len()];
        let start = geom.storm_start(e);
        if e > 0 {
            schedule = schedule.at(start, burst_seed(seed, e as u64));
        }
        if kind.drops_copies() {
            phases.push(StormPhase::new(start, geom.storm_end(e), kind));
        }
    }
    (schedule, phases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_resolve_by_name() {
        let p = SoakPlan::by_name("default", 4, 7).unwrap();
        assert!(!p.worst_case);
        assert_eq!(p.epochs, 4);
        let p = SoakPlan::by_name("worst-case", 2, 0).unwrap();
        assert!(p.worst_case);
        let p = SoakPlan::by_name("large-n", 3, 9).unwrap();
        assert_eq!(p.name, "large-n");
        assert!(SoakPlan::by_name("gentle", 1, 0).is_err());
    }

    #[test]
    fn large_n_plan_is_one_windowed_cell() {
        let cells = SoakPlan::large_n(2, 5).cells();
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        assert_eq!(c.scenario, SoakScenario::RoundAgreement);
        assert_eq!(c.n, LARGE_N);
        assert_eq!(c.history_window, Some(LARGE_N_WINDOW));
        assert_eq!(c.label, "round-agreement/n4096");
        assert!(!c.worst_case);
        // The stock plans keep the full history — their cells (and thus
        // their report bytes) are untouched by the windowed machinery.
        for c in SoakPlan::default_plan(1, 0)
            .cells()
            .iter()
            .chain(SoakPlan::worst_case(1, 0).cells().iter())
        {
            assert_eq!(c.history_window, None);
        }
    }

    #[test]
    fn cells_cover_every_scenario_with_distinct_labels() {
        let cells = SoakPlan::default_plan(3, 11).cells();
        assert_eq!(cells.len(), 6);
        let labels: std::collections::BTreeSet<&str> =
            cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels.len(), cells.len(), "labels must be unique");
        for s in [
            SoakScenario::RoundAgreement,
            SoakScenario::Compiled,
            SoakScenario::Detector,
        ] {
            assert!(cells.iter().any(|c| c.scenario == s), "{s:?} missing");
        }
        for c in &cells {
            assert_eq!(c.epochs, 3);
        }
    }

    #[test]
    fn burst_seeds_differ_across_epochs() {
        let seeds: std::collections::BTreeSet<u64> = (0..16).map(|e| burst_seed(5, e)).collect();
        assert_eq!(seeds.len(), 16);
    }

    #[test]
    fn worst_case_cycle_raises_omission_intensity() {
        let default = storm_cycle(false);
        let worst = storm_cycle(true);
        assert!(matches!(
            default[1],
            StormKind::OmissionStorm { percent: 60 }
        ));
        assert!(matches!(worst[1], StormKind::OmissionStorm { percent: 90 }));
        assert!(default[0].drops_copies());
        assert!(!default[3].drops_copies());
    }
}
