//! Storm plans: which scenarios soak, under which storm cycle, at which
//! seeds.
//!
//! A plan expands to a list of independent [`SoakCell`]s — pure
//! functions of `(scenario, seed, epochs)` — that the engine fans out
//! over the sweep executor. Two plans ship:
//!
//! * **default** — the storm cycle at moderate intensity (60% omission
//!   storms, untargeted asynchronous scheduling),
//! * **worst-case** — 90% omission storms, a fully poisoned detector
//!   start, and an [`ftss::async_sim::AdversaryScheduler`] inflating
//!   every delay that touches a victim for the first half of the run.

use ftss::core::StormKind;

/// Which execution a soak cell drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoakScenario {
    /// Round agreement on the synchronous simulator: Theorem 3's
    /// one-round recovery after every storm epoch.
    RoundAgreement,
    /// The compiled `Π⁺` (FloodSet, `f = 1`) on the synchronous
    /// simulator: Theorem 4's `2·final_round + 2` recovery bound.
    Compiled,
    /// The self-stabilizing ◇S detector on the asynchronous simulator:
    /// Theorem 5's settle properties per epoch.
    Detector,
}

impl SoakScenario {
    /// Stable name, used in cell labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            SoakScenario::RoundAgreement => "round-agreement",
            SoakScenario::Compiled => "compiled-floodset",
            SoakScenario::Detector => "strong-detector",
        }
    }
}

/// One independent soak execution: a pure function of this struct.
#[derive(Clone, Debug)]
pub struct SoakCell {
    /// Which execution.
    pub scenario: SoakScenario,
    /// Report label, `scenario/vK`.
    pub label: String,
    /// System size.
    pub n: usize,
    /// The cell's seed (drives corruption, omission draws and the
    /// asynchronous scheduler).
    pub seed: u64,
    /// Storm epochs to run.
    pub epochs: usize,
    /// Whether the worst-case intensities apply.
    pub worst_case: bool,
}

/// A named soak plan.
#[derive(Clone, Debug)]
pub struct SoakPlan {
    /// Plan name (`default` or `worst-case`).
    pub name: &'static str,
    /// Storm epochs per cell.
    pub epochs: usize,
    /// Base seed; cell seeds derive from it.
    pub seed: u64,
    /// Whether the worst-case intensities apply.
    pub worst_case: bool,
}

/// Seed variants per scenario in a plan.
const VARIANTS: u64 = 2;

impl SoakPlan {
    /// The default plan: moderate storm intensity.
    pub fn default_plan(epochs: usize, seed: u64) -> Self {
        SoakPlan {
            name: "default",
            epochs,
            seed,
            worst_case: false,
        }
    }

    /// The worst-case plan: maximum admissible storm intensity.
    pub fn worst_case(epochs: usize, seed: u64) -> Self {
        SoakPlan {
            name: "worst-case",
            epochs,
            seed,
            worst_case: true,
        }
    }

    /// Looks a plan up by CLI name.
    ///
    /// # Errors
    ///
    /// Unknown plan names.
    pub fn by_name(name: &str, epochs: usize, seed: u64) -> Result<Self, String> {
        match name {
            "default" => Ok(Self::default_plan(epochs, seed)),
            "worst-case" => Ok(Self::worst_case(epochs, seed)),
            other => Err(format!(
                "unknown soak plan {other:?} (expected 'default' or 'worst-case')"
            )),
        }
    }

    /// Expands the plan into its cells, in canonical report order.
    pub fn cells(&self) -> Vec<SoakCell> {
        let scenarios = [
            (SoakScenario::RoundAgreement, 6),
            (SoakScenario::Compiled, 5),
            (SoakScenario::Detector, 5),
        ];
        let mut out = Vec::with_capacity(scenarios.len() * VARIANTS as usize);
        for (scenario, n) in scenarios {
            for v in 0..VARIANTS {
                out.push(SoakCell {
                    scenario,
                    label: format!("{}/v{v}", scenario.name()),
                    n,
                    seed: self.seed.wrapping_add(v.wrapping_mul(0x9e37_79b9)),
                    epochs: self.epochs,
                    worst_case: self.worst_case,
                });
            }
        }
        out
    }
}

/// The synchronous storm cycle: epoch `e` fires `cycle[e % 4]`. Every
/// epoch *additionally* opens with a corruption burst, so the pure
/// [`StormKind::CorruptionBurst`] slot is the burst-only epoch.
pub fn storm_cycle(worst_case: bool) -> [StormKind; 4] {
    let percent = if worst_case { 90 } else { 60 };
    [
        StormKind::Partition,
        StormKind::OmissionStorm { percent },
        StormKind::SilenceChurn,
        StormKind::CorruptionBurst,
    ]
}

/// The corruption seed for a cell's epoch `e` burst: distinct per epoch,
/// derived only from the cell seed, so reports are reproducible.
pub fn burst_seed(cell_seed: u64, epoch: u64) -> u64 {
    cell_seed ^ 0xb127 ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_resolve_by_name() {
        let p = SoakPlan::by_name("default", 4, 7).unwrap();
        assert!(!p.worst_case);
        assert_eq!(p.epochs, 4);
        let p = SoakPlan::by_name("worst-case", 2, 0).unwrap();
        assert!(p.worst_case);
        assert!(SoakPlan::by_name("gentle", 1, 0).is_err());
    }

    #[test]
    fn cells_cover_every_scenario_with_distinct_labels() {
        let cells = SoakPlan::default_plan(3, 11).cells();
        assert_eq!(cells.len(), 6);
        let labels: std::collections::BTreeSet<&str> =
            cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels.len(), cells.len(), "labels must be unique");
        for s in [
            SoakScenario::RoundAgreement,
            SoakScenario::Compiled,
            SoakScenario::Detector,
        ] {
            assert!(cells.iter().any(|c| c.scenario == s), "{s:?} missing");
        }
        for c in &cells {
            assert_eq!(c.epochs, 3);
        }
    }

    #[test]
    fn burst_seeds_differ_across_epochs() {
        let seeds: std::collections::BTreeSet<u64> = (0..16).map(|e| burst_seed(5, e)).collect();
        assert_eq!(seeds.len(), 16);
    }

    #[test]
    fn worst_case_cycle_raises_omission_intensity() {
        let default = storm_cycle(false);
        let worst = storm_cycle(true);
        assert!(matches!(
            default[1],
            StormKind::OmissionStorm { percent: 60 }
        ));
        assert!(matches!(worst[1], StormKind::OmissionStorm { percent: 90 }));
        assert!(default[0].drops_copies());
        assert!(!default[3].drops_copies());
    }
}
