//! The soak engine: drives every cell of a plan through its simulator,
//! verifies recovery after each storm epoch, and assembles the
//! deterministic JSONL soak report.
//!
//! ## Epoch model
//!
//! Synchronous cells run **one long execution** of
//! `epochs × epoch_len` rounds. Epoch `e` opens with a storm: a
//! systemic corruption burst at its first round (epoch 0's burst is the
//! run's initial corruption) plus the cycled [`StormKind`] fired by
//! [`ftss::sync_sim::StormAdversary`] for the storm window. The rest of
//! the epoch is the recovery window, verified with
//! [`ftss_check::window_stabilization`] measured **from the end of the
//! storm** — Theorem 3's bound for round agreement, Theorem 4's
//! `2·final_round + 2` for the compiled `Π⁺`.
//!
//! Asynchronous cells run the ◇S detector over
//! `epochs × epoch_time` virtual time; each epoch opens with a
//! scheduled mid-run corruption and is verified against Theorem 5's
//! settle properties on that epoch's probe window.
//!
//! ## Determinism
//!
//! The report carries **no wall-clock values** — every stamp is a round
//! or a virtual time — so the same plan, epochs and seed produce the
//! same bytes on any machine and any `--jobs` value (cells merge in
//! canonical order via [`ftss_sweep::try_map_cells`]). The only
//! nondeterministic escape hatch is the wall-clock watchdog, whose
//! verdict replaces the cell fragment with a bare budget line.

use crate::guard::{with_watchdog, QuiescenceMonitor, SoakBudget, WatchdogOutcome};
use crate::plan::{
    burst_seed, churn_cycle, join_seed, restart_cycle, storm_cycle, SoakCell, SoakPlan,
    SoakScenario, StormGeometry,
};
use crate::verdict::{CellReport, EpochVerdict, SoakVerdict};
use ftss::async_sim::{
    AdversaryScheduler, AsyncConfig, AsyncProcess, AsyncRunner, Scheduler, Time,
};
use ftss::compiler::{trace_events, Compiled};
use ftss::core::{
    saturating_round_index, Corrupt, History, Problem, ProcessId, ProcessSet, RateAgreementSpec,
    StormKind, StormPhase,
};
use ftss::detectors::{
    eventual_weak_accuracy, strong_completeness_time, suspicion_events, LifeState,
    StrongDetectorProcess, SuspectProbe, WeakOracle,
};
use ftss::protocols::{FloodSet, RepeatedConsensusSpec, RoundAgreement};
use ftss::sync_sim::{CorruptionSchedule, RunConfig, StormAdversary, SyncProtocol, SyncRunner};
use ftss::telemetry::{Event, NullSink, RunMode};
use ftss_check::window_stabilization;
use ftss_serve::TransportKind;
use ftss_serve::{serve, Retry, ServeConfig, ServeRestart, SnapshotFault, TimingFaults};
use std::fmt::Write as _;

/// One soak campaign's parameters.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// The plan to run.
    pub plan: SoakPlan,
    /// Worker threads for the cell fan-out.
    pub jobs: usize,
    /// Per-cell budgets.
    pub budget: SoakBudget,
}

/// A finished soak campaign.
#[derive(Clone, Debug)]
pub struct SoakOutcome {
    /// Per-cell reports, in the plan's canonical cell order.
    pub cells: Vec<CellReport>,
}

impl SoakOutcome {
    /// Whether every cell fully recovered after every epoch.
    pub fn all_recovered(&self) -> bool {
        self.cells.iter().all(|c| c.verdict.is_recovered())
    }

    /// The deterministic JSONL soak report: every cell's fragment,
    /// concatenated in canonical cell order.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&c.jsonl);
        }
        out
    }

    /// A human summary, one line per cell plus a final verdict line.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            let recoveries: Vec<String> = c
                .epochs
                .iter()
                .map(|e| match e {
                    EpochVerdict::Recovered { rounds } => rounds.to_string(),
                    EpochVerdict::Violated { .. } => "VIOLATED".into(),
                    EpochVerdict::Livelock { .. } => "LIVELOCK".into(),
                })
                .collect();
            let _ = writeln!(
                out,
                "{:<22} {:<10} recovery per epoch: [{}]",
                c.cell,
                match &c.verdict {
                    SoakVerdict::Recovered => "PASS".to_string(),
                    other => other.to_string(),
                },
                recoveries.join(", ")
            );
        }
        let failed = self.cells.iter().filter(|c| !c.verdict.is_recovered());
        let names: Vec<&str> = failed.map(|c| c.cell.as_str()).collect();
        if names.is_empty() {
            let _ = writeln!(out, "soak: all {} cells recovered", self.cells.len());
        } else {
            let _ = writeln!(
                out,
                "soak: {} of {} cells FAILED: {}",
                names.len(),
                self.cells.len(),
                names.join(", ")
            );
        }
        out
    }
}

/// Runs a soak campaign: every cell of the plan, fanned out over the
/// sweep executor with panic isolation and a per-cell watchdog.
///
/// # Errors
///
/// Rejects empty plans (zero epochs).
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakOutcome, String> {
    if cfg.plan.epochs == 0 {
        return Err("soak: epochs must be at least 1".into());
    }
    let cells = cfg.plan.cells();
    let budget = cfg.budget.clone();
    let results = ftss_sweep::try_map_cells(&cells, cfg.jobs, |cell| {
        let cell = cell.clone();
        let budget = budget.clone();
        let label = cell.label.clone();
        match with_watchdog(budget.wall_ms, move || run_cell(&cell, &budget)) {
            WatchdogOutcome::Completed(report) => report,
            WatchdogOutcome::TimedOut => {
                // The abandoned cell's partial trace is unreachable, so
                // the fragment is a bare budget line — the one report
                // shape that is *not* byte-deterministic, by design.
                let mut jsonl = String::new();
                push_line(
                    &mut jsonl,
                    &Event::BudgetExhausted {
                        at: 0,
                        budget: "wall_clock".into(),
                    },
                );
                CellReport::timed_out(label, "wall_clock", Vec::new(), jsonl)
            }
        }
    });
    let cells = results
        .into_iter()
        .zip(&cells)
        .map(|(res, cell)| match res {
            Ok(report) => report,
            Err(p) => CellReport::panicked(cell.label.clone(), p.message),
        })
        .collect();
    Ok(SoakOutcome { cells })
}

fn run_cell(cell: &SoakCell, budget: &SoakBudget) -> CellReport {
    match cell.scenario {
        SoakScenario::RoundAgreement => run_round_agreement(cell, budget),
        SoakScenario::Compiled => run_compiled(cell, budget),
        SoakScenario::Detector => run_detector(cell, budget),
        SoakScenario::Restart => run_restart_cell(cell, budget),
    }
}

fn push_line(out: &mut String, ev: &Event) {
    ev.write_jsonl(out);
    out.push('\n');
}

// ---------------------------------------------------------------------
// Synchronous cells
// ---------------------------------------------------------------------

/// The cell's storm cycle: the timing kinds for served restart cells,
/// membership churn for churn cells, the stock cycle otherwise.
fn cell_cycle(cell: &SoakCell) -> [StormKind; 4] {
    if cell.scenario == SoakScenario::Restart {
        restart_cycle()
    } else if cell.churn {
        churn_cycle(cell.worst_case)
    } else {
        storm_cycle(cell.worst_case)
    }
}

/// The cell's storm program, via the public replay seam in [`crate::plan`].
fn cell_storm_program(
    cell: &SoakCell,
    geom: &StormGeometry,
    victims: &[ProcessId],
) -> (CorruptionSchedule, Vec<StormPhase>) {
    crate::plan::storm_program_for(cell.seed, cell.epochs, &cell_cycle(cell), geom, victims)
}

/// Report lines for epoch `e`'s storm window: start, the opening burst,
/// the joiners' entry corruption (churn cells' `Join` epochs only), end.
fn push_storm_lines(jsonl: &mut String, cell: &SoakCell, geom: &StormGeometry, e: usize) {
    let kind = cell_cycle(cell)[e % 4];
    let (start, end) = (geom.storm_start(e), geom.storm_end(e));
    push_line(
        jsonl,
        &Event::StormStart {
            epoch: e as u64,
            at: start,
            kind: kind.name().into(),
        },
    );
    push_line(
        jsonl,
        &Event::Corruption {
            round: start,
            seed: burst_seed(cell.seed, e as u64),
        },
    );
    if kind == StormKind::Join {
        push_line(
            jsonl,
            &Event::Corruption {
                round: end + 1,
                seed: join_seed(cell.seed, e as u64),
            },
        );
    }
    push_line(
        jsonl,
        &Event::StormEnd {
            epoch: e as u64,
            at: end,
        },
    );
}

/// Round agreement under the full storm cycle. Victims are a strict
/// minority (the coterie survives every partition); recovery is Theorem
/// 3's bound, measured from the end of each storm.
///
/// The bound is 2, not 1: when a dropping storm closes, the victims'
/// still-corrupted counters reach the correct processes only on the
/// *heal round* (the first round after the last drop) — that round is
/// the epoch's final perturbation, and Theorem 3's one-round
/// stabilization counts from it.
fn run_round_agreement(cell: &SoakCell, budget: &SoakBudget) -> CellReport {
    let geom = StormGeometry {
        storm_len: 3,
        epoch_len: 12,
    };
    let victims = [ProcessId(0), ProcessId(1)];
    if let Some(window) = cell.history_window {
        return run_round_agreement_streamed(cell, budget, &geom, &victims, window);
    }
    run_sync_cell(
        cell,
        budget,
        &geom,
        &victims,
        RoundAgreement,
        &RateAgreementSpec::new(),
        2,
        |_| Vec::new(),
    )
}

/// The large-n variant of the round-agreement cell: the same storm
/// program, but the run streams through a bounded history window
/// (`SyncRunner::run_streaming`) and each epoch is verified **in-stream**
/// the moment its last round lands — before the window evicts it. The
/// full execution is never resident, which is what lets this cell soak
/// `n = 4096`. Report lines come out in the same canonical order as the
/// full-retention driver, so the fragment shape is identical.
///
/// Round agreement emits no churn stamps, so the quiescence monitor —
/// a no-op on empty stamps in the full-retention path — is skipped.
fn run_round_agreement_streamed(
    cell: &SoakCell,
    budget: &SoakBudget,
    geom: &StormGeometry,
    victims: &[ProcessId],
    window: usize,
) -> CellReport {
    assert!(
        window as u64 >= geom.epoch_len,
        "soak window of {window} rounds cannot retain a full epoch of {}",
        geom.epoch_len
    );
    let bound = 2;
    let total_rounds = geom.epoch_len * cell.epochs as u64;
    let mut jsonl = String::new();
    push_line(
        &mut jsonl,
        &Event::RunStart {
            mode: RunMode::Sync,
            protocol: cell.label.clone(),
            n: cell.n,
            rounds: Some(total_rounds),
            msg_size: None,
        },
    );
    if total_rounds > budget.max_rounds {
        push_line(
            &mut jsonl,
            &Event::BudgetExhausted {
                at: 0,
                budget: "rounds".into(),
            },
        );
        return CellReport::timed_out(cell.label.clone(), "rounds", Vec::new(), jsonl);
    }

    let (schedule, phases) = cell_storm_program(cell, geom, victims);
    let mut adv = StormAdversary::new(victims.iter().copied(), phases, cell.seed ^ 0x517a);
    let run_cfg = RunConfig::corrupted(cell.n, total_rounds as usize, burst_seed(cell.seed, 0))
        .with_mid_run_corruption(schedule)
        .with_history_window(window);
    let spec = RateAgreementSpec::new();
    let mut results: Vec<Result<usize, String>> = Vec::with_capacity(cell.epochs);
    let run = SyncRunner::new(RoundAgreement).run_streaming(
        &mut adv,
        &run_cfg,
        &mut NullSink,
        |history| {
            let e = results.len();
            if e < cell.epochs && history.len() as u64 == geom.epoch_end(e) {
                results.push(window_stabilization(
                    history,
                    &spec,
                    geom.storm_end(e) as usize,
                    geom.epoch_end(e) as usize,
                    bound,
                ));
            }
        },
    );
    if let Err(e) = run {
        return CellReport::from_epochs(
            cell.label.clone(),
            vec![EpochVerdict::Violated {
                detail: format!("bad soak run config: {e}"),
            }],
            jsonl,
        );
    }

    let mut epochs = Vec::with_capacity(cell.epochs);
    for (e, res) in results.into_iter().enumerate() {
        let close = geom.epoch_end(e);
        push_storm_lines(&mut jsonl, cell, geom, e);
        let verdict = match res {
            Ok(s) => {
                push_line(
                    &mut jsonl,
                    &Event::RecoveryMeasured {
                        epoch: e as u64,
                        at: close,
                        rounds: s as u64,
                        bound: bound as u64,
                        ok: true,
                    },
                );
                EpochVerdict::Recovered { rounds: s as u64 }
            }
            Err(detail) => {
                push_line(
                    &mut jsonl,
                    &Event::RecoveryMeasured {
                        epoch: e as u64,
                        at: close,
                        rounds: 0,
                        bound: bound as u64,
                        ok: false,
                    },
                );
                EpochVerdict::Violated { detail }
            }
        };
        epochs.push(verdict);
    }
    CellReport::from_epochs(cell.label.clone(), epochs, jsonl)
}

/// The compiled `Π⁺` (FloodSet, `f = 1`) under the storm cycle with a
/// single victim. Recovery is Theorem 4's `2·final_round + 2`, measured
/// from the end of each storm (the storm's last failure is no later
/// than its closing round, so the bound is conservative). Livelock is
/// judged on the compiled trace's suspicion churn.
fn run_compiled(cell: &SoakCell, budget: &SoakBudget) -> CellReport {
    let inputs: Vec<u64> = (0..cell.n as u64)
        .map(|i| (i * 17 + cell.seed) % 100)
        .collect();
    let pi = Compiled::new(FloodSet::new(1, inputs));
    let fr = saturating_round_index(pi.final_round());
    let bound = 2 * fr + 2;
    let geom = StormGeometry {
        storm_len: 3,
        epoch_len: bound as u64 + 9,
    };
    let victims = [ProcessId(0)];
    run_sync_cell(
        cell,
        budget,
        &geom,
        &victims,
        pi,
        &RepeatedConsensusSpec::agreement_only(),
        bound,
        |history| {
            trace_events(history)
                .iter()
                .filter_map(|ev| match ev {
                    Event::Suspicion { at, .. } => Some(*at),
                    _ => None,
                })
                .collect()
        },
    )
}

/// The shared synchronous driver: one long run, storms from the cycle,
/// per-epoch window verification.
#[allow(clippy::too_many_arguments)]
fn run_sync_cell<P>(
    cell: &SoakCell,
    budget: &SoakBudget,
    geom: &StormGeometry,
    victims: &[ProcessId],
    protocol: P,
    spec: &dyn Problem<P::State, P::Msg>,
    bound: usize,
    churn_stamps: impl FnOnce(&History<P::State, P::Msg>) -> Vec<u64>,
) -> CellReport
where
    P: SyncProtocol,
    P::State: Corrupt,
{
    let total_rounds = geom.epoch_len * cell.epochs as u64;
    let mut jsonl = String::new();
    push_line(
        &mut jsonl,
        &Event::RunStart {
            mode: RunMode::Sync,
            protocol: cell.label.clone(),
            n: cell.n,
            rounds: Some(total_rounds),
            msg_size: None,
        },
    );
    if total_rounds > budget.max_rounds {
        push_line(
            &mut jsonl,
            &Event::BudgetExhausted {
                at: 0,
                budget: "rounds".into(),
            },
        );
        return CellReport::timed_out(cell.label.clone(), "rounds", Vec::new(), jsonl);
    }

    let (schedule, phases) = cell_storm_program(cell, geom, victims);
    let mut adv = StormAdversary::new(victims.iter().copied(), phases, cell.seed ^ 0x517a);
    let run_cfg = RunConfig::corrupted(cell.n, total_rounds as usize, burst_seed(cell.seed, 0))
        .with_mid_run_corruption(schedule);
    let out = match SyncRunner::new(protocol).run(&mut adv, &run_cfg) {
        Ok(out) => out,
        Err(e) => {
            return CellReport::from_epochs(
                cell.label.clone(),
                vec![EpochVerdict::Violated {
                    detail: format!("bad soak run config: {e}"),
                }],
                jsonl,
            );
        }
    };

    let stamps = churn_stamps(&out.history);
    let monitor = QuiescenceMonitor::new(2 * cell.n as u64);
    let mut epochs = Vec::with_capacity(cell.epochs);
    for e in 0..cell.epochs {
        let (end, close) = (geom.storm_end(e), geom.epoch_end(e));
        push_storm_lines(&mut jsonl, cell, geom, e);
        let verdict =
            match window_stabilization(&out.history, spec, end as usize, close as usize, bound) {
                Ok(s) => match monitor.check(&stamps, end, close) {
                    Some(churn) => {
                        push_line(
                            &mut jsonl,
                            &Event::RecoveryMeasured {
                                epoch: e as u64,
                                at: close,
                                rounds: s as u64,
                                bound: bound as u64,
                                ok: false,
                            },
                        );
                        EpochVerdict::Livelock { churn }
                    }
                    None => {
                        push_line(
                            &mut jsonl,
                            &Event::RecoveryMeasured {
                                epoch: e as u64,
                                at: close,
                                rounds: s as u64,
                                bound: bound as u64,
                                ok: true,
                            },
                        );
                        EpochVerdict::Recovered { rounds: s as u64 }
                    }
                },
                Err(detail) => {
                    push_line(
                        &mut jsonl,
                        &Event::RecoveryMeasured {
                            epoch: e as u64,
                            at: close,
                            rounds: 0,
                            bound: bound as u64,
                            ok: false,
                        },
                    );
                    EpochVerdict::Violated { detail }
                }
            };
        epochs.push(verdict);
    }
    CellReport::from_epochs(cell.label.clone(), epochs, jsonl)
}

// ---------------------------------------------------------------------
// The served restart cell
// ---------------------------------------------------------------------

/// Served round agreement (`mem` transport, real router and node
/// threads) under the restart cycle. One crash–restart episode runs
/// inside epoch 0: the victim is killed at round 2, its first respawn
/// attempt at round 4 reads a truncated recovery snapshot, and the final
/// attempt at round 6 re-admits it on clean (but stale) bytes. The
/// partial-synchrony proxy renders the cycle's timing kinds — delayed,
/// duplicated, reordered copies — against the same victim in every
/// storm window.
///
/// Verification is Theorem 3's oracle per epoch, measured from the last
/// perturbation that can touch the epoch: the storm's close plus the
/// timing kind's slack (a `Delay { rounds }` copy lands up to `rounds`
/// after the storm closes; reordered and duplicated copies land one
/// round late), and in epoch 0 additionally the restart's final
/// scheduled attempt — the re-entering node carries its stale snapshot
/// until that round.
fn run_restart_cell(cell: &SoakCell, budget: &SoakBudget) -> CellReport {
    let geom = StormGeometry::engine_default();
    let victims = [ProcessId(0)];
    let total_rounds = geom.epoch_len * cell.epochs as u64;
    let mut jsonl = String::new();
    push_line(
        &mut jsonl,
        &Event::RunStart {
            mode: RunMode::Sync,
            protocol: cell.label.clone(),
            n: cell.n,
            rounds: Some(total_rounds),
            msg_size: None,
        },
    );
    if total_rounds > budget.max_rounds {
        push_line(
            &mut jsonl,
            &Event::BudgetExhausted {
                at: 0,
                budget: "rounds".into(),
            },
        );
        return CellReport::timed_out(cell.label.clone(), "rounds", Vec::new(), jsonl);
    }

    let (schedule, phases) = cell_storm_program(cell, &geom, &victims);
    let mut adv = StormAdversary::new(victims.iter().copied(), phases.clone(), cell.seed ^ 0x517a);
    let restart = ServeRestart {
        p: ProcessId(0),
        kill_round: 2,
        gap: 2,
        staleness: 1,
        fault: SnapshotFault::Truncated,
        snapshot_seed: cell.seed ^ 0x5a97,
        retry: Retry {
            attempts: 2,
            backoff_rounds: 2,
        },
    };
    let run_cfg = RunConfig::corrupted(cell.n, total_rounds as usize, burst_seed(cell.seed, 0))
        .with_mid_run_corruption(schedule);
    let serve_cfg = ServeConfig::new(run_cfg, TransportKind::Mem)
        .with_restart(restart)
        .with_timing(TimingFaults {
            victims: victims.to_vec(),
            phases,
            seed: cell.seed ^ 0x7131,
        });
    let out = match serve(&RoundAgreement, &mut adv, &serve_cfg, &mut NullSink) {
        Ok(out) => out,
        Err(e) => {
            return CellReport::from_epochs(
                cell.label.clone(),
                vec![EpochVerdict::Violated {
                    detail: format!("bad soak run config: {e}"),
                }],
                jsonl,
            );
        }
    };

    let bound = 2;
    let spec = RateAgreementSpec::new();
    let cycle = restart_cycle();
    let mut epochs = Vec::with_capacity(cell.epochs);
    for e in 0..cell.epochs {
        push_storm_lines(&mut jsonl, cell, &geom, e);
        let slack = match cycle[e % cycle.len()] {
            StormKind::Delay { rounds } => u64::from(rounds),
            StormKind::Reorder | StormKind::Duplicate => 1,
            _ => 0,
        };
        let mut from = geom.storm_end(e) + slack;
        if e == 0 {
            from = from.max(restart.last_attempt_round());
        }
        let close = geom.epoch_end(e);
        let verdict =
            match window_stabilization(&out.history, &spec, from as usize, close as usize, bound) {
                Ok(s) => {
                    push_line(
                        &mut jsonl,
                        &Event::RecoveryMeasured {
                            epoch: e as u64,
                            at: close,
                            rounds: s as u64,
                            bound: bound as u64,
                            ok: true,
                        },
                    );
                    EpochVerdict::Recovered { rounds: s as u64 }
                }
                Err(detail) => {
                    push_line(
                        &mut jsonl,
                        &Event::RecoveryMeasured {
                            epoch: e as u64,
                            at: close,
                            rounds: 0,
                            bound: bound as u64,
                            ok: false,
                        },
                    );
                    EpochVerdict::Violated { detail }
                }
            };
        epochs.push(verdict);
    }
    CellReport::from_epochs(cell.label.clone(), epochs, jsonl)
}

// ---------------------------------------------------------------------
// The asynchronous cell
// ---------------------------------------------------------------------

/// Virtual time per detector epoch.
const EPOCH_TIME: Time = 6_000;
/// Probe interval for suspect-set sampling.
const PROBE_EVERY: Time = 200;
/// Heartbeat/poll period of the detector under soak.
const HEARTBEAT: Time = 20;

/// The ◇S detector: every epoch opens with a scheduled mid-run
/// corruption; epoch 1 (or epoch 0 of a 1-epoch soak) also carries a
/// real crash. The worst-case plan starts fully poisoned and runs under
/// an [`AdversaryScheduler`] whose inflation window covers the first
/// half of the horizon.
fn run_detector(cell: &SoakCell, budget: &SoakBudget) -> CellReport {
    let n = cell.n;
    let horizon = EPOCH_TIME * cell.epochs as u64;
    let crash_at: Time = if cell.epochs >= 2 {
        EPOCH_TIME + 500
    } else {
        500
    };
    let crashes: Vec<(ProcessId, Time)> = vec![(ProcessId(n - 1), crash_at)];
    let oracle = WeakOracle::new(n, crashes.clone(), 0, cell.seed, 0.0);
    let mut procs: Vec<StrongDetectorProcess> = (0..n)
        .map(|i| StrongDetectorProcess::new(ProcessId(i), oracle.clone(), HEARTBEAT))
        .collect();
    if cell.worst_case {
        // The battery's fully poisoned start: everyone believes everyone
        // else dead at a huge version.
        for (i, p) in procs.iter_mut().enumerate() {
            for s in 0..n {
                if s == i {
                    p.num[s] = 0;
                    p.state[s] = LifeState::Alive;
                } else {
                    p.num[s] = 1_000_000_000;
                    p.state[s] = LifeState::Dead;
                }
            }
        }
    }
    let mut cfg = AsyncConfig::tame(cell.seed);
    cfg.crashes = crashes.clone();
    if cell.worst_case {
        let sched = AdversaryScheduler::new([ProcessId(1)]).with_window(0, horizon / 2);
        match AsyncRunner::with_scheduler(procs, cfg, sched) {
            Ok(runner) => drive_detector(cell, budget, runner, &crashes),
            Err(e) => bad_async_config(cell, &e.to_string()),
        }
    } else {
        match AsyncRunner::new(procs, cfg) {
            Ok(runner) => drive_detector(cell, budget, runner, &crashes),
            Err(e) => bad_async_config(cell, &e.to_string()),
        }
    }
}

fn bad_async_config(cell: &SoakCell, detail: &str) -> CellReport {
    CellReport::from_epochs(
        cell.label.clone(),
        vec![EpochVerdict::Violated {
            detail: format!("bad soak run config: {detail}"),
        }],
        String::new(),
    )
}

/// The storm label for a detector epoch: delay inflation while the
/// worst-case scheduler's window is open, a bare burst otherwise.
fn detector_storm_kind(cell: &SoakCell, e: usize) -> &'static str {
    let horizon = EPOCH_TIME * cell.epochs as u64;
    if cell.worst_case && (e as u64 * EPOCH_TIME) < horizon / 2 {
        ftss::core::StormKind::DelayInflation.name()
    } else {
        ftss::core::StormKind::CorruptionBurst.name()
    }
}

fn drive_detector<S>(
    cell: &SoakCell,
    budget: &SoakBudget,
    mut runner: AsyncRunner<StrongDetectorProcess, S>,
    crashes: &[(ProcessId, Time)],
) -> CellReport
where
    S: Scheduler<<StrongDetectorProcess as AsyncProcess>::Msg>,
{
    let n = cell.n;
    let mut jsonl = String::new();
    push_line(
        &mut jsonl,
        &Event::RunStart {
            mode: RunMode::Async,
            protocol: cell.label.clone(),
            n,
            rounds: None,
            msg_size: None,
        },
    );
    for e in 0..cell.epochs {
        // Epoch 0's burst fires at t = 1: the detector must boot *into*
        // an arbitrary state, like the synchronous initial corruption.
        runner.schedule_corruption(
            (e as Time * EPOCH_TIME).max(1),
            burst_seed(cell.seed, e as u64),
        );
    }

    let mut probes: Vec<SuspectProbe> = Vec::new();
    let mut completed = 0usize;
    let mut tripped: Option<Time> = None;
    for e in 0..cell.epochs {
        runner.run_probed((e as Time + 1) * EPOCH_TIME, PROBE_EVERY, |t, ps| {
            probes.push(SuspectProbe::sample(t, ps));
        });
        completed = e + 1;
        let st = runner.stats();
        let consumed = st.messages_delivered + st.messages_to_crashed + st.timers_fired;
        if consumed > budget.max_events {
            tripped = Some(runner.now());
            break;
        }
    }

    let stamps: Vec<u64> = suspicion_events(&probes)
        .iter()
        .filter_map(|ev| match ev {
            Event::Suspicion { at, .. } => Some(*at),
            _ => None,
        })
        .collect();
    let monitor = QuiescenceMonitor::new(2 * n as u64);
    let mut epochs = Vec::with_capacity(completed);
    for e in 0..completed {
        let lo = e as Time * EPOCH_TIME;
        let hi = (e as Time + 1) * EPOCH_TIME;
        let at = lo.max(1);
        push_line(
            &mut jsonl,
            &Event::StormStart {
                epoch: e as u64,
                at,
                kind: detector_storm_kind(cell, e).into(),
            },
        );
        push_line(
            &mut jsonl,
            &Event::Corruption {
                round: at,
                seed: burst_seed(cell.seed, e as u64),
            },
        );
        push_line(
            &mut jsonl,
            &Event::StormEnd {
                epoch: e as u64,
                at,
            },
        );
        for &(p, t) in crashes {
            if t > lo && t <= hi {
                push_line(&mut jsonl, &Event::Crash { at: t, p });
            }
        }
        let window: Vec<SuspectProbe> = probes
            .iter()
            .filter(|pr| pr.time > lo && pr.time <= hi)
            .cloned()
            .collect();
        let crashed = ProcessSet::from_iter_n(
            n,
            crashes.iter().filter(|&&(_, t)| t <= hi).map(|&(p, _)| p),
        );
        let correct = crashed.complement();
        let comp = strong_completeness_time(&window, &crashed, &correct);
        let acc = eventual_weak_accuracy(&window, &correct);
        let verdict = if comp.is_none() && !crashed.is_empty() {
            push_line(
                &mut jsonl,
                &Event::RecoveryMeasured {
                    epoch: e as u64,
                    at: hi,
                    rounds: 0,
                    bound: EPOCH_TIME,
                    ok: false,
                },
            );
            EpochVerdict::Violated {
                detail: format!("thm5: strong completeness never settled in epoch {e}"),
            }
        } else if let Some((_, acc_t)) = acc {
            let settle = comp.unwrap_or(acc_t).max(acc_t);
            let recovery = settle - lo;
            match monitor.check(&stamps, lo, hi) {
                Some(churn) => {
                    push_line(
                        &mut jsonl,
                        &Event::RecoveryMeasured {
                            epoch: e as u64,
                            at: hi,
                            rounds: recovery,
                            bound: EPOCH_TIME,
                            ok: false,
                        },
                    );
                    EpochVerdict::Livelock { churn }
                }
                None => {
                    push_line(
                        &mut jsonl,
                        &Event::RecoveryMeasured {
                            epoch: e as u64,
                            at: hi,
                            rounds: recovery,
                            bound: EPOCH_TIME,
                            ok: true,
                        },
                    );
                    EpochVerdict::Recovered { rounds: recovery }
                }
            }
        } else {
            push_line(
                &mut jsonl,
                &Event::RecoveryMeasured {
                    epoch: e as u64,
                    at: hi,
                    rounds: 0,
                    bound: EPOCH_TIME,
                    ok: false,
                },
            );
            EpochVerdict::Violated {
                detail: format!("thm5: eventual weak accuracy never settled in epoch {e}"),
            }
        };
        epochs.push(verdict);
    }
    if let Some(at) = tripped {
        push_line(
            &mut jsonl,
            &Event::BudgetExhausted {
                at,
                budget: "events".into(),
            },
        );
        return CellReport::timed_out(cell.label.clone(), "events", epochs, jsonl);
    }
    CellReport::from_epochs(cell.label.clone(), epochs, jsonl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(plan: SoakPlan) -> SoakConfig {
        SoakConfig {
            plan,
            jobs: 1,
            budget: SoakBudget::default(),
        }
    }

    #[test]
    fn rejects_zero_epochs() {
        assert!(run_soak(&quick_config(SoakPlan::default_plan(0, 0))).is_err());
    }

    #[test]
    fn round_budget_trips_deterministically() {
        let mut cfg = quick_config(SoakPlan::default_plan(2, 0));
        cfg.budget.max_rounds = 5;
        let out = run_soak(&cfg).unwrap();
        assert!(!out.all_recovered());
        let ra = &out.cells[0];
        assert_eq!(ra.verdict, SoakVerdict::TimedOut { budget: "rounds" });
        assert!(
            ra.jsonl
                .contains(r#"{"type":"budget_exhausted","at":0,"budget":"rounds"}"#),
            "{}",
            ra.jsonl
        );
    }

    #[test]
    fn default_plan_single_epoch_recovers_and_reports() {
        let out = run_soak(&quick_config(SoakPlan::default_plan(1, 3))).unwrap();
        assert!(out.all_recovered(), "summary:\n{}", out.summary());
        assert_eq!(out.cells.len(), 6);
        let report = out.report();
        // One run_start per cell, one recovery verdict per cell-epoch.
        assert_eq!(report.matches(r#""type":"run_start""#).count(), 6);
        assert_eq!(report.matches(r#""type":"recovery_measured""#).count(), 6);
        assert_eq!(report.matches(r#""ok":true"#).count(), 6);
        // No wall-clock values can exist: every line must parse back.
        for line in report.lines() {
            ftss::telemetry::Event::parse_line(line).expect("report lines are valid events");
        }
    }

    #[test]
    fn streamed_round_agreement_matches_full_retention() {
        // The streamed (windowed) driver must produce the same verdicts
        // and the same report bytes as the full-retention driver on the
        // same cell — the window only changes what stays resident.
        let budget = SoakBudget::default();
        let mut cell = SoakPlan::default_plan(3, 11).cells()[0].clone();
        assert_eq!(cell.scenario, SoakScenario::RoundAgreement);
        let full = run_cell(&cell, &budget);
        cell.history_window = Some(12);
        let streamed = run_cell(&cell, &budget);
        assert_eq!(full.epochs, streamed.epochs);
        assert_eq!(full.verdict, streamed.verdict);
        assert_eq!(full.jsonl, streamed.jsonl);
        assert!(full.verdict.is_recovered(), "{}", full.jsonl);
    }

    #[test]
    fn churn_soak_recovers_across_join_and_leave_epochs() {
        // Four epochs cover the whole churn cycle: a node joins with an
        // arbitrary entry state, an omission storm passes, a node leaves,
        // and a global corruption burst fires. Every epoch must re-
        // stabilize within the theorem bound.
        let out = run_soak(&quick_config(SoakPlan::churn(4, 5))).unwrap();
        assert!(out.all_recovered(), "summary:\n{}", out.summary());
        // No async detector cells under churn.
        assert_eq!(out.cells.len(), 4);
        let report = out.report();
        // The Join epoch adds one extra corruption line (the joiner's
        // arbitrary entry state) on top of the initial corruption and the
        // per-epoch bursts; over 4 cells x 4 epochs with epoch 0
        // burst-free that is (1 + 3 + 1) * 4.
        assert_eq!(report.matches(r#""type":"corruption""#).count(), 20);
        assert_eq!(report.matches(r#""type":"recovery_measured""#).count(), 16);
        assert_eq!(report.matches(r#""ok":true"#).count(), 16);
        for line in report.lines() {
            ftss::telemetry::Event::parse_line(line).expect("report lines are valid events");
        }
    }

    #[test]
    fn churn_report_is_deterministic() {
        let a = run_soak(&quick_config(SoakPlan::churn(4, 5))).unwrap();
        let mut cfg = quick_config(SoakPlan::churn(4, 5));
        cfg.jobs = 4;
        let b = run_soak(&cfg).unwrap();
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn restart_soak_kills_respawns_and_restabilizes_every_epoch() {
        // Four epochs cover the whole restart cycle: a delay storm (with
        // the crash–restart episode inside it), a duplicate storm, a
        // reorder storm, and a bare corruption burst. Every epoch must
        // re-stabilize within the theorem bound, through a real router
        // and real node threads.
        let out = run_soak(&quick_config(SoakPlan::restart(4, 5))).unwrap();
        assert!(out.all_recovered(), "summary:\n{}", out.summary());
        assert_eq!(out.cells.len(), 2);
        let report = out.report();
        assert_eq!(report.matches(r#""type":"run_start""#).count(), 2);
        // One burst line per cell-epoch (epoch 0's is the initial
        // corruption); the restart cycle schedules no join corruption.
        assert_eq!(report.matches(r#""type":"corruption""#).count(), 8);
        assert_eq!(report.matches(r#""type":"recovery_measured""#).count(), 8);
        assert_eq!(report.matches(r#""ok":true"#).count(), 8);
        assert_eq!(report.matches(r#""kind":"delay""#).count(), 2);
        assert_eq!(report.matches(r#""kind":"duplicate""#).count(), 2);
        assert_eq!(report.matches(r#""kind":"reorder""#).count(), 2);
        for line in report.lines() {
            ftss::telemetry::Event::parse_line(line).expect("report lines are valid events");
        }
    }

    #[test]
    fn restart_report_is_deterministic() {
        // The acceptance bar: the mem-transport restart soak produces the
        // same bytes on reruns and across --jobs (real threads and a real
        // router notwithstanding).
        let a = run_soak(&quick_config(SoakPlan::restart(4, 5))).unwrap();
        let mut cfg = quick_config(SoakPlan::restart(4, 5));
        cfg.jobs = 4;
        let b = run_soak(&cfg).unwrap();
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn large_n_plan_runs_windowed_cell() {
        // The real plan pins n = 4096; that soak belongs to verify.sh's
        // release-build smoke. Here we drive the same code path through a
        // shrunken clone of the plan's single cell.
        let mut cell = SoakPlan::large_n(2, 7).cells().remove(0);
        cell.n = 8;
        let report = run_cell(&cell, &SoakBudget::default());
        assert!(report.verdict.is_recovered(), "{}", report.jsonl);
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(
            report
                .jsonl
                .matches(r#""type":"recovery_measured""#)
                .count(),
            2
        );
        for line in report.jsonl.lines() {
            ftss::telemetry::Event::parse_line(line).expect("report lines are valid events");
        }
    }

    #[test]
    fn summary_names_every_cell() {
        let out = run_soak(&quick_config(SoakPlan::default_plan(1, 0))).unwrap();
        let summary = out.summary();
        for cell in &out.cells {
            assert!(
                summary.contains(&cell.cell),
                "missing {}: {summary}",
                cell.cell
            );
        }
        assert!(summary.contains("all 6 cells recovered"), "{summary}");
    }
}
