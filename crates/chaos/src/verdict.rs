//! Soak verdicts: per-epoch recovery outcomes and the per-cell report.

/// The overall outcome of one soak cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SoakVerdict {
    /// Every epoch recovered within its theorem bound and went quiet.
    Recovered,
    /// Some epoch failed its recovery obligation.
    Violated {
        /// The first failing epoch's oracle verdict, one line.
        detail: String,
    },
    /// Recovery verified, but some epoch's tail never went quiet.
    Livelock {
        /// Which epoch and how much churn, one line.
        detail: String,
    },
    /// A budget tripped and the cell was cut short.
    TimedOut {
        /// Which budget: `rounds`, `events` or `wall_clock`.
        budget: &'static str,
    },
    /// The cell panicked; the sweep executor isolated it.
    Panicked {
        /// The panic payload.
        message: String,
    },
}

impl SoakVerdict {
    /// Whether the cell fully recovered.
    pub fn is_recovered(&self) -> bool {
        matches!(self, SoakVerdict::Recovered)
    }
}

impl std::fmt::Display for SoakVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoakVerdict::Recovered => write!(f, "recovered"),
            SoakVerdict::Violated { detail } => write!(f, "violated: {detail}"),
            SoakVerdict::Livelock { detail } => write!(f, "livelock: {detail}"),
            SoakVerdict::TimedOut { budget } => write!(f, "timed out ({budget} budget)"),
            SoakVerdict::Panicked { message } => write!(f, "panicked: {message}"),
        }
    }
}

/// One epoch's recovery verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EpochVerdict {
    /// The oracle held within the bound.
    Recovered {
        /// Measured stabilization from the end of the storm — rounds
        /// (synchronous cells) or virtual time (asynchronous cells).
        rounds: u64,
    },
    /// The oracle rejected the recovery window.
    Violated {
        /// The oracle's verdict, one line.
        detail: String,
    },
    /// The oracle held but the epoch's tail kept churning.
    Livelock {
        /// Churn events observed in the tail of the recovery window.
        churn: u64,
    },
}

/// One soak cell's full result: verdict, per-epoch detail, and the
/// cell's fragment of the deterministic JSONL soak report.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// The cell's label (`scenario/variant`).
    pub cell: String,
    /// The cell's overall verdict.
    pub verdict: SoakVerdict,
    /// Per-epoch verdicts, in epoch order (may be shorter than the plan
    /// when a budget tripped mid-cell).
    pub epochs: Vec<EpochVerdict>,
    /// JSONL report fragment, one `ftss_telemetry::Event` per line.
    pub jsonl: String,
}

impl CellReport {
    /// Derives the overall verdict from per-epoch verdicts: the first
    /// violation wins, then the first livelock, else full recovery.
    pub fn from_epochs(cell: String, epochs: Vec<EpochVerdict>, jsonl: String) -> Self {
        let mut verdict = SoakVerdict::Recovered;
        for (e, ev) in epochs.iter().enumerate() {
            match ev {
                EpochVerdict::Violated { detail } => {
                    verdict = SoakVerdict::Violated {
                        detail: format!("epoch {e}: {detail}"),
                    };
                    break;
                }
                EpochVerdict::Livelock { churn } if verdict.is_recovered() => {
                    verdict = SoakVerdict::Livelock {
                        detail: format!("epoch {e}: {churn} churn events in the recovery tail"),
                    };
                }
                _ => {}
            }
        }
        CellReport {
            cell,
            verdict,
            epochs,
            jsonl,
        }
    }

    /// A cell cut short by a budget.
    pub fn timed_out(
        cell: String,
        budget: &'static str,
        epochs: Vec<EpochVerdict>,
        jsonl: String,
    ) -> Self {
        CellReport {
            cell,
            verdict: SoakVerdict::TimedOut { budget },
            epochs,
            jsonl,
        }
    }

    /// A cell that panicked (isolated by the sweep executor). The report
    /// fragment is empty: the panic site's partial trace is untrusted.
    pub fn panicked(cell: String, message: String) -> Self {
        CellReport {
            cell,
            verdict: SoakVerdict::Panicked { message },
            epochs: Vec::new(),
            jsonl: String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_beats_livelock_beats_recovery() {
        let r = CellReport::from_epochs(
            "c".into(),
            vec![
                EpochVerdict::Recovered { rounds: 1 },
                EpochVerdict::Livelock { churn: 40 },
                EpochVerdict::Violated {
                    detail: "thm3: nope".into(),
                },
            ],
            String::new(),
        );
        match &r.verdict {
            SoakVerdict::Violated { detail } => {
                assert!(detail.starts_with("epoch 2:"), "{detail}");
            }
            other => panic!("expected violation, got {other}"),
        }

        let r = CellReport::from_epochs(
            "c".into(),
            vec![
                EpochVerdict::Livelock { churn: 40 },
                EpochVerdict::Recovered { rounds: 0 },
            ],
            String::new(),
        );
        assert!(matches!(r.verdict, SoakVerdict::Livelock { .. }));

        let r = CellReport::from_epochs(
            "c".into(),
            vec![EpochVerdict::Recovered { rounds: 0 }],
            String::new(),
        );
        assert!(r.verdict.is_recovered());
    }

    #[test]
    fn verdict_display_is_one_line() {
        for v in [
            SoakVerdict::Recovered,
            SoakVerdict::Violated { detail: "d".into() },
            SoakVerdict::Livelock { detail: "d".into() },
            SoakVerdict::TimedOut { budget: "rounds" },
            SoakVerdict::Panicked {
                message: "m".into(),
            },
        ] {
            assert!(!v.to_string().contains('\n'), "{v}");
        }
    }
}
