//! # ftss-chaos — the chaos soak engine
//!
//! Long-horizon repeated-Σ⁺ executions through both simulators while a
//! composable **fault-storm plan** fires epochs of perturbation:
//! mid-run corruption bursts, omission storms, crash/recover silence
//! churn, partition-and-heal windows and asynchronous delay inflation —
//! and, under the `restart` plan, crash–restart kills with
//! damaged-snapshot respawns plus partial-synchrony timing storms
//! rendered through the `ftss-serve` socket runtime itself.
//! After *every* storm epoch the engine verifies recovery by re-running
//! the property oracles — Theorem 3's one-round stabilization, Theorem
//! 4's `2·final_round + 2` bound and Theorem 5's detector settlement —
//! measured from the end of the storm (Definition 2.4 piece-wise
//! stability, applied per epoch via
//! [`ftss_check::window_stabilization`]).
//!
//! Runtime guardrails keep a soak honest:
//!
//! * **budgets** — per-cell round, event and wall-clock ceilings
//!   ([`SoakBudget`]); an overrun becomes a structured
//!   [`SoakVerdict::TimedOut`], never a hang,
//! * **watchdog** — [`with_watchdog`] converts a wedged cell into a
//!   verdict while the rest of the campaign completes,
//! * **livelock detection** — [`QuiescenceMonitor`] rejects epochs whose
//!   recovery tail never goes quiet even though the oracle is satisfied,
//! * **panic isolation** — campaigns fan out over
//!   [`ftss_sweep::try_map_cells`], so one poisoned cell yields
//!   [`SoakVerdict::Panicked`] instead of aborting the soak.
//!
//! Every run is a pure function of `(plan, epochs, seed)`: the JSONL
//! soak report contains no wall-clock values and is byte-identical
//! across reruns and across worker counts. See DESIGN.md §11.

pub mod engine;
pub mod guard;
pub mod plan;
pub mod verdict;

pub use engine::{run_soak, SoakConfig, SoakOutcome};
pub use guard::{with_watchdog, QuiescenceMonitor, SoakBudget, WatchdogOutcome};
pub use plan::{
    burst_seed, churn_cycle, join_seed, restart_cycle, storm_cycle, storm_program,
    storm_program_for, SoakCell, SoakPlan, SoakScenario, StormGeometry,
};
pub use verdict::{CellReport, EpochVerdict, SoakVerdict};
