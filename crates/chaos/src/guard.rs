//! Runtime guardrails: budgets, the wall-clock watchdog, and the
//! non-quiescence (livelock) detector.
//!
//! A soak must never hang and never lie. The round and event budgets
//! are checked *deterministically* (before a synchronous run, between
//! asynchronous epoch chunks), so tripping them yields the same report
//! bytes on every machine. The wall-clock watchdog is the one
//! deliberately nondeterministic guard — it exists so a wedged cell
//! becomes a structured verdict instead of a stuck process — and its
//! default is generous enough that a healthy soak never trips it.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Duration;

/// Per-cell resource ceilings.
#[derive(Clone, Debug)]
pub struct SoakBudget {
    /// Maximum scheduled rounds for one synchronous cell. Checked before
    /// the run (the round count is a pure function of the plan), so a
    /// rejection is deterministic and stamped `at = 0`.
    pub max_rounds: u64,
    /// Maximum simulator events (deliveries + drops + timers) for one
    /// asynchronous cell, checked between epoch chunks.
    pub max_events: u64,
    /// Wall-clock ceiling for one cell, enforced by [`with_watchdog`].
    pub wall_ms: u64,
}

impl Default for SoakBudget {
    fn default() -> Self {
        SoakBudget {
            max_rounds: 200_000,
            max_events: 5_000_000,
            wall_ms: 120_000,
        }
    }
}

/// What the watchdog observed.
#[derive(Debug)]
pub enum WatchdogOutcome<R> {
    /// The cell finished within the wall-clock budget.
    Completed(R),
    /// The budget elapsed first; the cell thread was abandoned.
    TimedOut,
}

/// Runs `f` on its own thread and waits at most `wall_ms` for it.
///
/// A cell that finishes in time is joined and returned; a cell that
/// panics has its payload re-raised on the caller's thread (so the
/// sweep executor's per-cell `catch_unwind` still isolates it); a cell
/// that overruns is **abandoned** — the thread keeps running detached
/// until its pure computation ends, which is the price of turning an
/// unbounded overrun into a structured verdict without unsafe
/// cancellation.
pub fn with_watchdog<R, F>(wall_ms: u64, f: F) -> WatchdogOutcome<R>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name("ftss-soak-cell".into())
        .spawn(move || {
            // The send only fails if the watchdog already gave up — the
            // result is then dropped with the abandoned thread.
            let _ = tx.send(catch_unwind(AssertUnwindSafe(f)));
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => panic!("soak watchdog could not spawn its cell thread: {e}"),
    };
    match rx.recv_timeout(Duration::from_millis(wall_ms)) {
        Ok(Ok(r)) => {
            let _ = handle.join();
            WatchdogOutcome::Completed(r)
        }
        Ok(Err(payload)) => {
            let _ = handle.join();
            resume_unwind(payload)
        }
        Err(_) => WatchdogOutcome::TimedOut,
    }
}

/// The non-quiescence detector: a recovered system should go *quiet*.
///
/// The oracle proves the property holds on the recovery window; this
/// monitor additionally demands that the **tail** of the window (its
/// last quarter) shows at most `max_tail_churn` churn events — suspect
/// verdict flips, for the detector-bearing cells. A system that keeps
/// oscillating while technically satisfying its predicate is livelocked
/// by this definition, and the soak reports it as such.
#[derive(Clone, Copy, Debug)]
pub struct QuiescenceMonitor {
    /// Maximum churn events tolerated in the tail of a recovery window.
    pub max_tail_churn: u64,
}

impl QuiescenceMonitor {
    /// A monitor tolerating at most `max_tail_churn` tail events.
    pub fn new(max_tail_churn: u64) -> Self {
        QuiescenceMonitor { max_tail_churn }
    }

    /// Checks churn stamps (round numbers or virtual times) against the
    /// window `(from, to]`: returns `Some(churn)` when the tail — the
    /// last quarter of the window — holds more than the tolerated churn.
    pub fn check(&self, stamps: &[u64], from: u64, to: u64) -> Option<u64> {
        let tail_from = to.saturating_sub(to.saturating_sub(from) / 4);
        let churn = stamps.iter().filter(|&&s| s > tail_from && s <= to).count() as u64;
        (churn > self.max_tail_churn).then_some(churn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_returns_fast_results() {
        match with_watchdog(5_000, || 41 + 1) {
            WatchdogOutcome::Completed(42) => {}
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_times_out_a_wedged_cell() {
        let out = with_watchdog(10, || {
            std::thread::sleep(Duration::from_millis(300));
            0u8
        });
        assert!(matches!(out, WatchdogOutcome::TimedOut));
    }

    #[test]
    fn watchdog_reraises_cell_panics() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _ = with_watchdog(5_000, || panic!("cell died"));
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "cell died");
    }

    #[test]
    fn monitor_flags_only_noisy_tails() {
        let m = QuiescenceMonitor::new(2);
        // Window (0, 100]: the tail is (75, 100].
        let quiet = [10, 20, 30, 74, 75]; // all churn before the tail
        assert_eq!(m.check(&quiet, 0, 100), None);
        let two_in_tail = [80, 90];
        assert_eq!(m.check(&two_in_tail, 0, 100), None, "at the cap is fine");
        let noisy = [76, 80, 90, 100];
        assert_eq!(m.check(&noisy, 0, 100), Some(4));
        // Stamps outside the window never count.
        assert_eq!(m.check(&[101, 150, 999], 0, 100), None);
    }

    #[test]
    fn monitor_handles_degenerate_windows() {
        let m = QuiescenceMonitor::new(0);
        assert_eq!(m.check(&[], 0, 0), None);
        assert_eq!(m.check(&[5], 5, 5), None, "empty window has no tail");
    }
}
