//! Property test: bounded-suffix (windowed) history retention is
//! observationally equivalent to full retention.
//!
//! The large-n engine's whole premise is that evicting old round frames
//! changes *nothing observable*: the telemetry trace, the final states,
//! the folded faulty set, the retained suffix frames, and every oracle
//! verdict the window can still answer must come out identical. This
//! test drives random (n, rounds, window, adversary, corruption)
//! configurations through both retention modes and demands exactly that.

use ftss::compiler::{trace_events, Compiled};
use ftss::core::{CrashSchedule, ProcessId, RateAgreementSpec, Round};
use ftss::protocols::{FloodSet, RoundAgreement};
use ftss::sync_sim::{CorruptionSchedule, CrashOnly, RandomOmission, RunConfig, SyncRunner};
use ftss::telemetry::{Event, RecordingSink};
use ftss_check::window_stabilization;
use ftss_rng::check::{forall, Gen};
use ftss_rng::Rng;

const CASES: u64 = 32;

fn render(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        ev.write_jsonl(&mut out);
        out.push('\n');
    }
    out
}

#[test]
fn windowed_retention_is_observationally_equivalent() {
    forall(CASES, |g: &mut Gen| {
        let n = 2 + (g.gen::<u64>() % 5) as usize; // 2..=6
        let rounds = 3 + (g.gen::<u64>() % 8) as usize; // 3..=10
        let window = 1 + (g.gen::<u64>() % rounds as u64) as usize; // 1..=rounds
        let seed = g.gen::<u64>();

        // Half the cases fight a random-omission adversary, half a
        // crashing one; every case boots corrupted and suffers one
        // mid-run corruption burst.
        let mk_adv = |g: &mut Gen| -> (Box<dyn ftss::sync_sim::Adversary>, u64) {
            let flavor = g.gen::<u64>();
            if flavor % 2 == 0 {
                let faulty_ct = (g.gen::<u64>() % n as u64) as usize;
                let p_drop = (g.gen::<u64>() % 101) as f64 / 100.0;
                (
                    Box::new(RandomOmission::new(
                        (0..faulty_ct).map(ProcessId),
                        p_drop,
                        g.gen(),
                    )),
                    flavor,
                )
            } else {
                let mut cs = CrashSchedule::none();
                let victim = ProcessId((g.gen::<u64>() % n as u64) as usize);
                let at = 1 + g.gen::<u64>() % rounds as u64;
                cs.set(victim, Round::new(at));
                (Box::new(CrashOnly::new(cs)), flavor)
            }
        };
        let burst_round = 2 + g.gen::<u64>() % rounds as u64;
        let schedule = CorruptionSchedule::none().at(burst_round, seed ^ 0x5eed);
        let cfg = RunConfig::corrupted(n, rounds, seed).with_mid_run_corruption(schedule);

        // Both runs must see identical adversary draws, so each gets a
        // freshly seeded copy built from the same generator state.
        let mut g2 = Gen::new(g.seed() ^ 0xada17, g.size());
        let (mut adv_full, flavor) = mk_adv(&mut g2);
        let mut g2 = Gen::new(g.seed() ^ 0xada17, g.size());
        let (mut adv_win, flavor2) = mk_adv(&mut g2);
        assert_eq!(flavor, flavor2, "adversary reconstruction must be pure");

        let mut sink_full = RecordingSink::new(1 << 16);
        let full = SyncRunner::new(RoundAgreement)
            .run_traced(adv_full.as_mut(), &cfg, &mut sink_full)
            .expect("valid config");
        let mut sink_win = RecordingSink::new(1 << 16);
        let windowed = SyncRunner::new(RoundAgreement)
            .run_traced(
                adv_win.as_mut(),
                &cfg.clone().with_history_window(window),
                &mut sink_win,
            )
            .expect("valid config");

        // 1. The JSONL telemetry trace is byte-identical.
        assert_eq!(
            render(&sink_full.take()),
            render(&sink_win.take()),
            "trace diverged (n={n} rounds={rounds} window={window})"
        );
        // 2. Final states and history shape agree.
        assert_eq!(full.final_states, windowed.final_states);
        assert_eq!(full.history.len(), windowed.history.len());
        assert_eq!(windowed.history.evicted(), rounds.saturating_sub(window));
        // 3. The faulty set survives eviction via the folded summary.
        assert_eq!(full.history.faulty(), windowed.history.faulty());
        // 4. Every retained frame is identical to the full run's.
        for r in windowed.history.evicted() + 1..=rounds {
            assert_eq!(
                full.history.round(Round::new(r as u64)),
                windowed.history.round(Round::new(r as u64)),
                "frame {r} diverged"
            );
        }
        // 5. The stabilization oracle returns the same verdict on the
        //    deepest window the retained suffix can still answer.
        let from_len = (rounds - window + 1).max(1);
        for bound in 0..=2usize {
            let v_full = window_stabilization(
                &full.history,
                &RateAgreementSpec::new(),
                from_len,
                rounds,
                bound,
            );
            let v_win = window_stabilization(
                &windowed.history,
                &RateAgreementSpec::new(),
                from_len,
                rounds,
                bound,
            );
            assert_eq!(
                v_full, v_win,
                "oracle diverged (from_len={from_len} bound={bound})"
            );
        }
    });
}

/// Regression: `trace_events` used to panic on windowed histories; it
/// now treats the oldest retained frame as the baseline, so its output
/// is the full extraction restricted to rounds past the eviction
/// horizon (the evicted prefix remains recoverable via `TraceCursor`).
#[test]
fn compiled_trace_extraction_works_on_windowed_histories() {
    for seed in 0..8u64 {
        let n = 4;
        let rounds = 14;
        let window = 6;
        let inputs: Vec<u64> = (0..n as u64).map(|i| (i * 5 + seed) % 9).collect();
        let cfg = RunConfig::corrupted(n, rounds, seed);
        let run = |cfg: &RunConfig| {
            SyncRunner::new(Compiled::new(FloodSet::new(1, inputs.clone())))
                .run(
                    &mut RandomOmission::new([ProcessId(0)], 0.3, seed ^ 0xfa11),
                    cfg,
                )
                .expect("valid config")
        };
        let full = run(&cfg);
        let windowed = run(&cfg.clone().with_history_window(window));
        assert_eq!(windowed.history.evicted(), rounds - window);

        // The first retained frame is the state at the start of round
        // evicted + 1; diffs become visible one round later.
        let horizon = (windowed.history.evicted() + 1) as u64;
        let expected: Vec<Event> = trace_events(&full.history)
            .into_iter()
            .filter(|e| match e {
                Event::Decision { round, .. } => *round > horizon,
                Event::Suspicion { at, .. } => *at > horizon,
                _ => unreachable!("trace_events only emits decisions and suspicions"),
            })
            .collect();
        assert_eq!(
            trace_events(&windowed.history),
            expected,
            "windowed extraction diverged (seed {seed})"
        );
    }
}
