//! Determinism regression for the Byzantine and churn fault models:
//! boundary sweeps and churn soaks are pure functions of their
//! configuration — byte-identical across reruns and across worker
//! counts — the same contract `tests/soak_determinism.rs` pins for the
//! stock storm plans.

use ftss_chaos::{run_soak, SoakBudget, SoakConfig, SoakPlan};

fn config(plan: SoakPlan, jobs: usize) -> SoakConfig {
    SoakConfig {
        plan,
        jobs,
        budget: SoakBudget::default(),
    }
}

#[test]
fn byzantine_boundary_table_is_byte_identical_across_jobs_and_reruns() {
    // The E10 grid up to n = 8 covers both sides of the n > 4f boundary:
    // (4, 1) is unsolvable (and measured as violated), (8, 1) recovers.
    // The rendered table must not depend on worker scheduling.
    let baseline = ftss_check::e10_table(2, 8, 1).to_string();
    assert!(baseline.contains("byzantine"), "{baseline}");
    assert!(baseline.contains("churn"), "{baseline}");
    for jobs in [1, 4] {
        assert_eq!(
            ftss_check::e10_table(2, 8, jobs).to_string(),
            baseline,
            "jobs={jobs} must reproduce the boundary table byte for byte"
        );
    }
}

#[test]
fn churn_soak_report_is_byte_identical_across_jobs_and_reruns() {
    let baseline = run_soak(&config(SoakPlan::churn(2, 0), 1)).unwrap();
    assert!(
        baseline.all_recovered(),
        "churn plan must recover:\n{}",
        baseline.summary()
    );
    let report = baseline.report();
    assert!(!report.is_empty());
    for jobs in [1, 4] {
        let again = run_soak(&config(SoakPlan::churn(2, 0), jobs)).unwrap();
        assert_eq!(
            again.report(),
            report,
            "jobs={jobs} must reproduce the report byte for byte"
        );
    }
}
