//! Determinism regression for the parallel sweep executor: a sweep's
//! output — rendered tables and concatenated JSONL traces alike — must be
//! byte-identical whether it ran on 1 worker (`FTSS_JOBS=1`) or 4. This
//! is the contract `ftss-lab sweep` exposes and `scripts/verify.sh`
//! `cmp`-checks end to end; here it is asserted in-process, plus once via
//! the `FTSS_JOBS` environment knob itself.

use ftss::protocols::RoundAgreement;
use ftss::sync_sim::{NoFaults, RunConfig, SyncRunner};
use ftss_sweep::{e1_table, e7c_table, jobs_from_env, map_cells};

#[test]
fn e1_table_is_byte_identical_serial_vs_parallel() {
    let serial = e1_table(3, 8, 1).to_string();
    for jobs in [2, 4] {
        assert_eq!(e1_table(3, 8, jobs).to_string(), serial, "jobs={jobs}");
    }
    // Sanity: the small grid still renders real rows.
    assert!(serial.contains("none"));
    assert!(serial.contains("silent 6 rounds"));
}

#[test]
fn e7c_table_is_byte_identical_serial_vs_parallel() {
    // The async experiment: per-cell RNGs are seeded, so worker scheduling
    // cannot leak into the folded table.
    let serial = e7c_table(2, 1).to_string();
    assert_eq!(e7c_table(2, 4).to_string(), serial);
    assert!(serial.contains("resend period"));
}

#[test]
fn swept_jsonl_traces_concatenate_identically() {
    // A sweep whose cells each produce a full JSONL trace: the merged
    // stream (canonical cell order) must be byte-identical for any worker
    // count — the property verify.sh checks through the CLI.
    fn trace_cell(seed: &u64) -> Vec<u8> {
        let mut sink = ftss::telemetry::JsonlSink::new(Vec::new());
        SyncRunner::new(RoundAgreement)
            .run_traced(&mut NoFaults, &RunConfig::corrupted(4, 8, *seed), &mut sink)
            .expect("valid config");
        sink.finish().expect("in-memory sink cannot fail")
    }
    let seeds: Vec<u64> = (0..12).collect();
    let concat = |jobs: usize| -> Vec<u8> { map_cells(&seeds, jobs, trace_cell).concat() };
    let serial = concat(1);
    assert!(!serial.is_empty());
    assert_eq!(concat(4), serial);
    assert_eq!(concat(3), serial);
}

#[test]
fn jobs_env_is_respected() {
    // `jobs_from_env` is what the CLI passes straight into the sweep; an
    // explicit FTSS_JOBS must win over autodetection. Env mutation is
    // process-global, hence a subprocess-free guard: only run the mutation
    // when the variable is not already pinned by the harness.
    if std::env::var_os("FTSS_JOBS").is_none() {
        // SAFETY: single mutation point in this test binary, and the tests
        // reading it (this one) run after the set.
        std::env::set_var("FTSS_JOBS", "3");
        assert_eq!(jobs_from_env(), 3);
        std::env::set_var("FTSS_JOBS", "not-a-number");
        assert_eq!(jobs_from_env(), 1, "garbage falls back to serial");
        std::env::remove_var("FTSS_JOBS");
    }
    assert!(jobs_from_env() >= 1);
}
