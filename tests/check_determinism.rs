//! Tier-1 determinism guarantees of `ftss-check` (wired as an
//! integration test of the `ftss-check` crate; see its `Cargo.toml`).
//!
//! * The exhaustive DFS visits a *pinned* number of schedules — the
//!   schedule space is part of the public contract, so a change to the
//!   consultation order or the enumeration shows up here first.
//! * A counterexample written to a schedule file replays byte-identically
//!   through the telemetry `JsonlSink` — twice, from the parsed file.
//! * The adversary battery's rows do not depend on the worker count.

use ftss::telemetry::JsonlSink;
use ftss_check::{explore, run_battery, run_tape, shrink, BatteryConfig, DfsConfig, ScheduleFile};

/// The acceptance-criterion run: n = 3 round agreement, one corrupted
/// initial state per process, omissions through p0. Four copies touch p0
/// per round (p0→p1, p0→p2, p1→p0, p2→p0), so 2 rounds give 8 decision
/// points and exactly 2^8 = 256 schedules — all of which must satisfy
/// Theorem 3's one-round stabilization.
#[test]
fn dfs_schedule_count_is_pinned_and_thm3_holds_everywhere() {
    let report = explore(&DfsConfig::small(7)).expect("valid config");
    assert_eq!(report.eligible_copies, 8);
    assert_eq!(report.decision_points, 8);
    assert_eq!(report.schedules, 256, "exhaustive within the bound");
    assert!(
        report.counterexample.is_none(),
        "Theorem 3 violated: {:?}",
        report.counterexample
    );
}

/// A deliberately broken oracle (stabilization bound 0: "corrupted starts
/// agree immediately") must produce a counterexample, shrink to a minimal
/// schedule, survive a serialize/parse round trip, and replay to the very
/// same verdict.
#[test]
fn broken_oracle_counterexample_shrinks_and_replays() {
    let mut cfg = DfsConfig::small(7);
    cfg.stabilization = 0;
    let report = explore(&cfg).expect("valid config");
    let ce = report.counterexample.expect("broken oracle must trip");
    let ce = shrink(&cfg, &ce.tape);
    assert!(
        ce.tape.is_empty(),
        "no omission is needed to refute stabilization 0, got {:?}",
        ce.tape
    );
    let file = ScheduleFile::new(cfg, ce.clone());
    let parsed = ScheduleFile::parse(&file.serialize()).expect("round trip");
    assert_eq!(parsed, file);
    assert_eq!(parsed.replay(), Some(ce.detail), "verdict reproduces");
}

/// Replaying a schedule through the telemetry sink is byte-deterministic:
/// the original violating run and two replays from the parsed file all
/// serialize to identical JSONL.
#[test]
fn counterexample_replay_is_byte_identical() {
    let mut cfg = DfsConfig::small(7);
    cfg.stabilization = 0;
    let report = explore(&cfg).expect("valid config");
    let ce = report.counterexample.expect("broken oracle must trip");
    let shrunk = shrink(&cfg, &ce.tape);
    let file = ScheduleFile::new(cfg, shrunk);
    let parsed = ScheduleFile::parse(&file.serialize()).expect("round trip");

    let trace = |cfg: &DfsConfig, tape: &[bool]| -> Vec<u8> {
        let mut sink = JsonlSink::new(Vec::new());
        run_tape(cfg, tape, &mut sink);
        sink.finish().expect("in-memory sink")
    };
    let original = trace(&file.cfg, &file.tape);
    let replay_a = trace(&parsed.cfg, &parsed.tape);
    let replay_b = trace(&parsed.cfg, &parsed.tape);
    assert!(!original.is_empty(), "trace must carry events");
    assert_eq!(original, replay_a, "replay reproduces the original bytes");
    assert_eq!(replay_a, replay_b, "and is stable across executions");
}

/// The battery fans out over the sweep executor; its report must be a
/// pure function of `(n, seeds)`, never of the worker count.
#[test]
fn battery_rows_are_identical_across_worker_counts() {
    let render = |jobs: usize| -> Vec<String> {
        run_battery(&BatteryConfig::new(5, 2, jobs))
            .expect("valid battery")
            .iter()
            .map(|r| r.to_string())
            .collect()
    };
    let serial = render(1);
    let parallel = render(4);
    assert_eq!(serial, parallel, "rows must not depend on FTSS_JOBS");
    assert!(
        serial.iter().all(|r| r.ends_with("PASS")),
        "battery must be green: {serial:#?}"
    );
}
