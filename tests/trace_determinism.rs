//! Determinism regression: the same seed must serialize to the same
//! JSONL trace, byte for byte — once for a synchronous scenario and once
//! for an asynchronous one. This is the contract `ftss-lab trace` exposes
//! and `scripts/verify.sh` smoke-checks end to end.

use ftss::analysis::{coterie_events, stabilization_event};
use ftss::async_sim::{AsyncConfig, AsyncRunner};
use ftss::compiler::{trace_events, Compiled};
use ftss::core::{ProcessId, RateAgreementSpec};
use ftss::detectors::{StrongDetectorProcess, WeakOracle};
use ftss::protocols::{FloodSet, RoundAgreement};
use ftss::sync_sim::{RandomOmission, RunConfig, SyncRunner};
use ftss::telemetry::{Event, JsonlSink, TraceSink};

/// One full synchronous trace (live events + derived events) as bytes.
fn sync_trace(seed: u64) -> Vec<u8> {
    let mut sink = JsonlSink::new(Vec::new());
    let mut adv = RandomOmission::new([ProcessId(1)], 0.4, seed);
    let out = SyncRunner::new(RoundAgreement)
        .run_traced(&mut adv, &RunConfig::corrupted(4, 10, seed), &mut sink)
        .expect("valid config");
    for ev in coterie_events(&out.history) {
        sink.emit(&ev);
    }
    if let Some(ev) = stabilization_event(&out.history, &RateAgreementSpec::new()) {
        sink.emit(&ev);
    }
    sink.finish().expect("in-memory sink cannot fail")
}

/// A compiled-protocol trace, exercising decision/suspicion extraction.
fn compiled_trace(seed: u64) -> Vec<u8> {
    let mut sink = JsonlSink::new(Vec::new());
    let pi_plus = Compiled::new(FloodSet::new(1, vec![4, 2, 7]));
    let out = SyncRunner::new(pi_plus)
        .run_traced(
            &mut ftss::sync_sim::NoFaults,
            &RunConfig::corrupted(3, 12, seed),
            &mut sink,
        )
        .expect("valid config");
    for ev in trace_events(&out.history) {
        sink.emit(&ev);
    }
    sink.finish().expect("in-memory sink cannot fail")
}

/// One full asynchronous trace as bytes.
fn async_trace(seed: u64) -> Vec<u8> {
    let n = 4;
    let crashes = vec![(ProcessId(3), 500)];
    let oracle = WeakOracle::new(n, crashes.clone(), 0, seed, 0.0);
    let procs: Vec<StrongDetectorProcess> = (0..n)
        .map(|i| StrongDetectorProcess::new(ProcessId(i), oracle.clone(), 20))
        .collect();
    let mut cfg = AsyncConfig::tame(seed);
    for &(p, t) in &crashes {
        cfg = cfg.with_crash(p, t);
    }
    let mut runner = AsyncRunner::new(procs, cfg).expect("valid config");
    let mut sink = JsonlSink::new(Vec::new());
    runner.run_until_traced(4_000, &mut sink);
    sink.finish().expect("in-memory sink cannot fail")
}

#[test]
fn sync_trace_is_byte_identical_across_runs() {
    for seed in [0u64, 1, 42] {
        let a = sync_trace(seed);
        let b = sync_trace(seed);
        assert!(!a.is_empty());
        assert_eq!(a, b, "seed {seed}: sync traces diverged");
    }
}

#[test]
fn compiled_trace_is_byte_identical_across_runs() {
    let a = compiled_trace(7);
    let b = compiled_trace(7);
    assert!(!a.is_empty());
    assert_eq!(a, b, "compiled traces diverged");
}

#[test]
fn async_trace_is_byte_identical_across_runs() {
    for seed in [0u64, 9] {
        let a = async_trace(seed);
        let b = async_trace(seed);
        assert!(!a.is_empty());
        assert_eq!(a, b, "seed {seed}: async traces diverged");
    }
}

#[test]
fn different_seeds_give_different_traces() {
    // Sanity check that the byte-equality above is not vacuous.
    assert_ne!(sync_trace(1), sync_trace(2));
}

#[test]
fn every_trace_line_round_trips_through_the_parser() {
    let bytes = sync_trace(3);
    let text = String::from_utf8(bytes).expect("traces are UTF-8");
    let mut count = 0;
    for line in text.lines() {
        let ev = Event::parse_line(line).expect("line parses");
        assert_eq!(ev.to_jsonl(), line, "re-serialization must be identity");
        count += 1;
    }
    assert!(
        count > 10,
        "expected a substantial trace, got {count} lines"
    );
}
