//! GroupPartition recovery: after the heal round, the full coterie is
//! intact (the paper's causal reachability is cumulative, so a healed
//! partition leaves every process reaching all correct ones) and round
//! agreement stabilizes within Theorem 3's bound counted from the heal
//! — a property test over seeds and partition window lengths.

use ftss::analysis::measured_stabilization_time;
use ftss::core::{coterie_of_prefix, ProcessId, ProcessSet, RateAgreementSpec};
use ftss::protocols::RoundAgreement;
use ftss::sync_sim::{GroupPartition, RunConfig, SyncRunner};
use ftss_check::window_stabilization;
use ftss_rng::check::forall;
use ftss_rng::Rng;

#[test]
fn coterie_survives_and_agreement_stabilizes_within_thm3_after_heal() {
    let n = 5;
    forall(40, |g| {
        let seed: u64 = g.gen();
        let from = g.gen_range(2..6u64);
        let len = g.gen_range(1..5u64);
        let heal = from + len - 1; // last partitioned round, inclusive
        let rounds = (heal + 8) as usize;
        let mut adv = GroupPartition::new([ProcessId(0)], from, heal);
        let out = SyncRunner::new(RoundAgreement)
            .run(&mut adv, &RunConfig::corrupted(n, rounds, seed))
            .expect("valid run config");

        // Causal reachability is cumulative: the healed run's coterie is
        // the full set — the partition quarantined, it did not amputate.
        let final_coterie = coterie_of_prefix(&out.history, rounds);
        assert_eq!(
            final_coterie,
            ProcessSet::full(n),
            "seed {seed} window {from}..{heal}: coterie must survive the heal"
        );

        // Stabilization, measured on the final stable window, completes
        // within Theorem 3's bound counted from the heal: everything up
        // to and including the heal round — when the victim's corrupted
        // counter flows back into the majority — may be skipped, plus
        // the theorem's one round.
        let m = measured_stabilization_time(&out.history, &RateAgreementSpec::new())
            .expect("non-empty history");
        let allowed = if (m.window_start as u64) <= heal {
            (heal + 1 - m.window_start as u64) as usize + 1
        } else {
            1
        };
        match m.stabilization_rounds {
            Some(s) => assert!(
                s <= allowed,
                "seed {seed} window {from}..{heal}: stabilized in {s} rounds, heal allows {allowed}"
            ),
            None => panic!("seed {seed} window {from}..{heal}: never stabilized after heal"),
        }

        // The windowed oracle agrees when measured from the partition's
        // last round with the chaos engine's heal-inclusive allowance
        // (one round for corrupt state to flow back, one for Theorem 3).
        window_stabilization(
            &out.history,
            &RateAgreementSpec::new(),
            heal as usize,
            rounds,
            2,
        )
        .unwrap_or_else(|d| panic!("seed {seed} window {from}..{heal}: {d}"));
    });
}
