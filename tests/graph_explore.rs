//! Tier-1 guarantees of graph-mode model checking (wired as an
//! integration test of the `ftss-check` crate; see its `Cargo.toml`).
//!
//! * The state-graph explorer and the legacy schedule-tree enumerator
//!   agree verdict-for-verdict on equivalent configurations — green on
//!   Theorem 3's claim, both tripped by the deliberately broken oracle.
//! * The graph does at least 10× fewer round executions than the
//!   enumerator on the pinned n=3 configuration (the scale-up claim).
//! * Reports are a pure function of the configuration, never of `jobs`.
//! * An n=5 fixpoint closes, certifying the obligations for *every*
//!   horizon — coverage no bounded tape enumeration can reach.
//! * A graph counterexample serializes with the `mode: graph` header and
//!   replays through the same schedule-file pipeline as enumerated ones.

use ftss_check::{explore, explore_graph, DfsConfig, GraphConfig, ScheduleFile, ScheduleMode};

/// One legacy/graph configuration pair covering the same space: `rounds`
/// BFS layers ≙ enumerating every `rounds`-round schedule, with the tape
/// bound sized to the full eligible-copy count.
fn equivalent_pair(
    n: usize,
    rounds: usize,
    seed: u64,
    stabilization: usize,
) -> (DfsConfig, GraphConfig) {
    let enum_cfg = DfsConfig {
        n,
        rounds,
        corruption_seed: seed,
        faulty: ftss::core::ProcessId(0),
        tape_bound: 2 * (n - 1) * rounds,
        stabilization,
    };
    let mut graph_cfg = GraphConfig::fixpoint(n, seed);
    graph_cfg.rounds = Some(rounds);
    graph_cfg.stabilization = stabilization;
    (enum_cfg, graph_cfg)
}

#[test]
fn graph_and_enumerator_agree_on_verdicts() {
    for seed in [7u64, 11, 42] {
        for stab in [1usize, 0] {
            let (ec, gc) = equivalent_pair(3, 2, seed, stab);
            let er = explore(&ec).expect("valid enum config");
            let gr = explore_graph(&gc).expect("valid graph config");
            assert_eq!(
                er.counterexample.is_some(),
                gr.counterexample.is_some(),
                "verdicts diverge at seed {seed}, stabilization {stab}"
            );
        }
    }
}

#[test]
fn graph_does_at_least_10x_less_work_than_the_enumerator() {
    // Work unit: round executions. The enumerator replays every prefix,
    // so it runs `schedules × rounds`; each graph expansion is exactly
    // one simulator round.
    let (ec, gc) = equivalent_pair(3, 3, 7, 1);
    let er = explore(&ec).expect("valid enum config");
    let gr = explore_graph(&gc).expect("valid graph config");
    assert!(er.counterexample.is_none() && gr.counterexample.is_none());
    let enum_work = er.schedules * ec.rounds as u64;
    assert!(
        enum_work >= 10 * gr.expansions,
        "graph must do >=10x fewer round executions: {} enumerated vs {} expanded",
        enum_work,
        gr.expansions
    );
}

#[test]
fn graph_reports_are_jobs_invariant() {
    let mut base = GraphConfig::fixpoint(4, 7);
    base.rounds = Some(3);
    let reference = explore_graph(&base).expect("valid config");
    for jobs in 2..=4 {
        let mut cfg = base.clone();
        cfg.jobs = jobs;
        let report = explore_graph(&cfg).expect("valid config");
        assert_eq!(report, reference, "report depends on jobs={jobs}");
    }
}

#[test]
fn n5_fixpoint_closes_and_certifies_every_horizon() {
    let report = explore_graph(&GraphConfig::fixpoint(5, 7)).expect("valid config");
    assert!(report.fixpoint, "n=5 exploration must close");
    assert!(
        report.counterexample.is_none(),
        "Theorem 3 violated at n=5: {:?}",
        report.counterexample
    );
    assert!(report.orbit_hits > 0, "symmetry reduction must fire at n=5");
    assert!(report.dedup_hits > 0, "fingerprint dedup must fire at n=5");
}

#[test]
fn graph_counterexample_replays_through_the_schedule_pipeline() {
    let mut cfg = GraphConfig::fixpoint(3, 7);
    cfg.stabilization = 0; // deliberately broken oracle
    let report = explore_graph(&cfg).expect("valid config");
    let gce = report.counterexample.expect("broken oracle must trip");
    let file = ScheduleFile::graph(gce.cfg, gce.counterexample.clone());
    let text = file.serialize();
    assert!(text.contains("\nmode: graph\n"), "{text}");
    let parsed = ScheduleFile::parse(&text).expect("round trip");
    assert_eq!(parsed, file);
    assert_eq!(parsed.mode, ScheduleMode::Graph);
    assert_eq!(
        parsed.replay(),
        Some(gce.counterexample.detail),
        "graph witnesses replay like enumerated ones"
    );
}
