//! The served execution IS the simulated execution.
//!
//! Pins the central claim of `ftss-serve` (ISSUE 7, satellite 3):
//!
//! * On the `mem` transport, a served session's telemetry stream is
//!   **byte-identical** to `SyncRunner::run_traced` — same events, same
//!   order, same JSONL bytes — and the final states match.
//! * On real sockets (`tcp`, `uds`), the stream is the same modulo the
//!   additional `net_*` events, and decisions/final states agree.
//! * The acceptance scenario: 3-node round agreement over real TCP
//!   survives a replayed partition+omission storm and re-stabilizes
//!   within the Thm-3 window bound after each storm, verified by
//!   `ftss_check::window_stabilization`.

use ftss::compiler::Compiled;
use ftss::core::{
    CrashSchedule, DeliveryOutcome, ProcessId, RateAgreementSpec, Round, StormKind, StormPhase,
};
use ftss::protocols::{FloodSet, RoundAgreement};
use ftss::sync_sim::{
    Adversary, CorruptionSchedule, CrashOnly, RandomOmission, RunConfig, StormAdversary, SyncRunner,
};
use ftss::telemetry::{Event, RecordingSink};
use ftss_chaos::{burst_seed, storm_program, StormGeometry};
use ftss_check::window_stabilization;
use ftss_serve::{
    serve, serve_streaming_with_stats, Retry, ServeChurn, ServeConfig, ServeRestart, ServeStats,
    SnapshotFault, TimingFaults, TransportKind,
};

fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        e.write_jsonl(&mut out);
    }
    out
}

fn without_net(events: &[Event]) -> Vec<Event> {
    events
        .iter()
        .filter(|e| !e.kind().starts_with("net_"))
        .cloned()
        .collect()
}

fn omission_adversary() -> RandomOmission {
    RandomOmission::new([ProcessId(0), ProcessId(2)], 0.4, 9)
}

#[test]
fn mem_round_agreement_is_byte_identical_to_simulator() {
    let cfg = RunConfig::corrupted(4, 12, 7);
    let mut sim_sink = RecordingSink::new(1 << 16);
    let sim = SyncRunner::new(RoundAgreement)
        .run_traced(&mut omission_adversary(), &cfg, &mut sim_sink)
        .expect("simulator run");

    let mut serve_sink = RecordingSink::new(1 << 16);
    let served = serve(
        &RoundAgreement,
        &mut omission_adversary(),
        &ServeConfig::new(cfg, TransportKind::Mem),
        &mut serve_sink,
    )
    .expect("served run");

    let sim_events = sim_sink.take();
    let serve_events = serve_sink.take();
    assert_eq!(sim_events, serve_events, "event streams diverge");
    assert_eq!(
        jsonl(&sim_events),
        jsonl(&serve_events),
        "JSONL bytes diverge"
    );
    assert_eq!(sim.final_states, served.final_states);
    assert_eq!(sim.history.len(), served.history.len());
}

#[test]
fn mem_compiled_floodset_is_byte_identical_to_simulator() {
    let inputs: Vec<u64> = (0..4).map(|i| (i * 7 + 3) % 50).collect();
    let cfg = RunConfig::corrupted(4, 10, 3);
    let crash = |_: ()| {
        let mut cs = CrashSchedule::none();
        cs.set(ProcessId(1), Round::new(4));
        CrashOnly::new(cs)
    };

    let mut sim_sink = RecordingSink::new(1 << 16);
    let sim = SyncRunner::new(Compiled::new(FloodSet::new(1, inputs.clone())))
        .run_traced(&mut crash(()), &cfg, &mut sim_sink)
        .expect("simulator run");

    let mut serve_sink = RecordingSink::new(1 << 16);
    let served = serve(
        &Compiled::new(FloodSet::new(1, inputs)),
        &mut crash(()),
        &ServeConfig::new(cfg, TransportKind::Mem),
        &mut serve_sink,
    )
    .expect("served run");

    assert_eq!(jsonl(&sim_sink.take()), jsonl(&serve_sink.take()));
    assert_eq!(sim.final_states, served.final_states);
}

#[test]
fn real_sockets_match_mem_modulo_net_events() {
    let run = |transport: TransportKind| {
        let cfg = RunConfig::corrupted(3, 8, 5);
        let mut sink = RecordingSink::new(1 << 16);
        let out = serve(
            &RoundAgreement,
            &mut omission_adversary(),
            &ServeConfig::new(cfg, transport),
            &mut sink,
        )
        .expect("served run");
        (sink.take(), out.final_states)
    };

    let (mem_events, mem_final) = run(TransportKind::Mem);
    assert!(
        mem_events.iter().all(|e| !e.kind().starts_with("net_")),
        "mem must emit no net_* events"
    );

    let (tcp_events, tcp_final) = run(TransportKind::Tcp);
    assert_eq!(without_net(&tcp_events), mem_events);
    assert_eq!(tcp_final, mem_final);
    assert!(
        tcp_events.iter().any(|e| e.kind() == "net_listen")
            && tcp_events.iter().any(|e| e.kind() == "net_frame")
            && tcp_events.iter().any(|e| e.kind() == "net_close"),
        "tcp must narrate its sockets"
    );

    #[cfg(unix)]
    {
        let (uds_events, uds_final) = run(TransportKind::Uds);
        assert_eq!(without_net(&uds_events), mem_events);
        assert_eq!(uds_final, mem_final);
    }
}

/// The ISSUE 7 acceptance scenario: 3 nodes over real TCP, a replayed
/// partition+omission storm program, per-epoch re-stabilization within
/// the Thm-3 window bound.
#[test]
fn tcp_storm_round_agreement_restabilizes_within_bound() {
    let seed = 42u64;
    let epochs = 2usize;
    let geom = StormGeometry::engine_default();
    let (schedule, phases) = storm_program(seed, epochs, false, &geom);
    let mut adversary = StormAdversary::new([ProcessId(0)], phases, seed ^ 0x517a);
    let rounds = epochs * geom.epoch_len as usize;
    let cfg = RunConfig::corrupted(3, rounds, burst_seed(seed, 0))
        .with_mid_run_corruption(schedule)
        .with_max_faulty(1);

    let mut sink = RecordingSink::new(1 << 16);
    let out = serve(
        &RoundAgreement,
        &mut adversary,
        &ServeConfig::new(cfg, TransportKind::Tcp),
        &mut sink,
    )
    .expect("storm run over tcp");

    let events = sink.take();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::Corruption { round, .. } if *round > 1)),
        "the storm program must have fired a mid-run burst"
    );
    for e in 0..epochs {
        let s = window_stabilization(
            &out.history,
            &RateAgreementSpec::new(),
            geom.storm_end(e) as usize,
            geom.epoch_end(e) as usize,
            2,
        )
        .unwrap_or_else(|err| panic!("epoch {e} did not re-stabilize: {err}"));
        assert!(s <= 2, "epoch {e} took {s} rounds, Thm-3 window bound is 2");
    }
}

/// Every transport replays the same storm to the same history — the
/// stabilization verdicts transfer between simulator and sockets.
#[test]
fn storm_histories_agree_across_substrates() {
    let seed = 11u64;
    let geom = StormGeometry::engine_default();
    let make = |_: ()| {
        let (schedule, phases) = storm_program(seed, 1, true, &geom);
        let cfg = RunConfig::corrupted(3, geom.epoch_len as usize, burst_seed(seed, 0))
            .with_mid_run_corruption(schedule)
            .with_max_faulty(1);
        (
            StormAdversary::new([ProcessId(0)], phases, seed ^ 0x517a),
            cfg,
        )
    };

    let (mut sim_adv, sim_cfg) = make(());
    let sim = SyncRunner::new(RoundAgreement)
        .run(&mut sim_adv, &sim_cfg)
        .expect("simulator run");
    let (mut tcp_adv, tcp_cfg) = make(());
    let tcp = serve(
        &RoundAgreement,
        &mut tcp_adv,
        &ServeConfig::new(tcp_cfg, TransportKind::Tcp),
        &mut ftss::telemetry::NullSink,
    )
    .expect("tcp run");

    assert_eq!(sim.final_states, tcp.final_states);
    let verdict = |h: &ftss::core::History<_, _>| {
        window_stabilization(
            h,
            &RateAgreementSpec::new(),
            geom.storm_end(0) as usize,
            geom.epoch_end(0) as usize,
            2,
        )
    };
    assert_eq!(verdict(&sim.history), verdict(&tcp.history));
}

/// Targeted corruption (the churn join's entry-state seam) replays on
/// the socket runtime byte-identical to the simulator.
#[test]
fn mem_targeted_corruption_is_byte_identical_to_simulator() {
    let schedule =
        CorruptionSchedule::none()
            .at(4, 21)
            .at_targeted(6, 99, [ProcessId(1), ProcessId(3)]);
    let cfg = RunConfig::corrupted(4, 12, 7).with_mid_run_corruption(schedule);

    let mut sim_sink = RecordingSink::new(1 << 16);
    let sim = SyncRunner::new(RoundAgreement)
        .run_traced(&mut omission_adversary(), &cfg, &mut sim_sink)
        .expect("simulator run");

    let mut serve_sink = RecordingSink::new(1 << 16);
    let served = serve(
        &RoundAgreement,
        &mut omission_adversary(),
        &ServeConfig::new(cfg, TransportKind::Mem),
        &mut serve_sink,
    )
    .expect("served run");

    assert_eq!(jsonl(&sim_sink.take()), jsonl(&serve_sink.take()));
    assert_eq!(sim.final_states, served.final_states);
}

/// The churn episode: a node leaves mid-session, a fresh connection
/// rejoins with the `hello` handshake, adopts an arbitrary entry state
/// via targeted corruption, and the session re-stabilizes within the
/// Thm-3 window bound measured from the join round.
#[test]
fn churn_session_rejoins_with_hello_and_restabilizes() {
    let churn = ServeChurn {
        p: ProcessId(0),
        leave_round: 4,
        join_round: 9,
    };
    // p0 is declared faulty (churn is a fault) but never omits a copy.
    let mut adversary = RandomOmission::new([ProcessId(0)], 0.0, 13);
    let cfg = RunConfig::corrupted(4, 16, 3)
        .with_mid_run_corruption(CorruptionSchedule::none().at_targeted(9, 0x90e, [ProcessId(0)]))
        .with_max_faulty(1);

    let mut sink = RecordingSink::new(1 << 16);
    let out = serve(
        &RoundAgreement,
        &mut adversary,
        &ServeConfig::new(cfg, TransportKind::Mem).with_churn(churn),
        &mut sink,
    )
    .expect("churn session");

    // Absent rounds record no state for the churner — it is simply gone.
    for r in churn.leave_round..churn.join_round {
        assert!(out
            .history
            .round(Round::new(r))
            .record(ProcessId(0))
            .state_at_start()
            .is_none());
    }
    // The join round snapshots the joiner's (corrupted) entry state.
    assert!(out
        .history
        .round(Round::new(churn.join_round))
        .record(ProcessId(0))
        .state_at_start()
        .is_some());
    let events = sink.take();
    assert!(
        events.iter().any(
            |e| matches!(e, Event::Corruption { round, seed } if *round == 9 && *seed == 0x90e)
        ),
        "the joiner's entry corruption must be narrated"
    );
    // Re-stabilization within the Thm-3 window bound from the join round.
    let s = window_stabilization(
        &out.history,
        &RateAgreementSpec::new(),
        churn.join_round as usize,
        16,
        2,
    )
    .expect("churned session re-stabilizes");
    assert!(s <= 2, "took {s} rounds, Thm-3 window bound is 2");
    assert!(out.final_states[0].is_some(), "the joiner finishes the run");
}

/// Churn sessions are deterministic: byte-identical across reruns on
/// `mem`, and identical modulo `net_*` narration on real sockets —
/// where the leave/rejoin shows up as an extra close + connect.
#[test]
fn churn_sessions_are_deterministic_across_transports() {
    let run = |transport: TransportKind| {
        let churn = ServeChurn {
            p: ProcessId(2),
            leave_round: 3,
            join_round: 7,
        };
        let cfg = RunConfig::corrupted(3, 10, 5)
            .with_mid_run_corruption(CorruptionSchedule::none().at_targeted(7, 77, [ProcessId(2)]))
            .with_max_faulty(1);
        let mut adversary = RandomOmission::new([ProcessId(2)], 0.0, 11);
        let mut sink = RecordingSink::new(1 << 16);
        let out = serve(
            &RoundAgreement,
            &mut adversary,
            &ServeConfig::new(cfg, transport).with_churn(churn),
            &mut sink,
        )
        .expect("churn session");
        (sink.take(), out.final_states)
    };

    let (mem_a, final_a) = run(TransportKind::Mem);
    let (mem_b, final_b) = run(TransportKind::Mem);
    assert_eq!(jsonl(&mem_a), jsonl(&mem_b), "mem reruns diverge");
    assert_eq!(final_a, final_b);

    let (tcp_events, tcp_final) = run(TransportKind::Tcp);
    assert_eq!(without_net(&tcp_events), mem_a);
    assert_eq!(tcp_final, final_a);
    let count = |kind: &str| tcp_events.iter().filter(|e| e.kind() == kind).count();
    // n connects at session start + 1 rejoin; n closes at the end + 1 leave.
    assert_eq!(count("net_connect"), 4);
    assert_eq!(count("net_close"), 4);
}

/// Churn configuration is validated like everything else.
#[test]
fn churn_rejects_invalid_episodes() {
    let attempt = |churn: ServeChurn, faulty: &[ProcessId]| {
        serve(
            &RoundAgreement,
            &mut RandomOmission::new(faulty.iter().copied(), 0.0, 1),
            &ServeConfig::new(
                RunConfig::clean(3, 8).with_max_faulty(2),
                TransportKind::Mem,
            )
            .with_churn(churn),
            &mut ftss::telemetry::NullSink,
        )
        .unwrap_err()
    };
    let ok = ServeChurn {
        p: ProcessId(1),
        leave_round: 3,
        join_round: 5,
    };
    // Churn outside the declared faulty set is not a legal adversary move.
    assert!(attempt(ok, &[ProcessId(0)]).contains("outside the declared faulty set"));
    // Leave/join must be ordered and inside the run.
    assert!(attempt(
        ServeChurn {
            join_round: 3,
            ..ok
        },
        &[ProcessId(1)]
    )
    .contains("churn needs"));
    assert!(attempt(
        ServeChurn {
            leave_round: 1,
            join_round: 2,
            ..ok
        },
        &[ProcessId(1)]
    )
    .contains("churn needs"));
    assert!(attempt(
        ServeChurn {
            join_round: 99,
            ..ok
        },
        &[ProcessId(1)]
    )
    .contains("churn needs"));
}

/// The ISSUE 10 acceptance scenario: 3-node round agreement over real
/// TCP through a kill/respawn episode — p0 dies at round 4, its first
/// respawn attempts read damaged snapshots, the final attempt re-admits
/// it on clean stale bytes — and the session re-stabilizes within the
/// Thm-3 window bound measured from the heal round.
#[test]
fn tcp_restart_round_agreement_restabilizes_within_bound() {
    let restart = ServeRestart {
        p: ProcessId(0),
        kill_round: 4,
        gap: 2,
        staleness: 2,
        fault: SnapshotFault::Truncated,
        snapshot_seed: 0x5a97,
        retry: Retry {
            attempts: 3,
            backoff_rounds: 2,
        },
    };
    // p0 is declared faulty (the restart is a fault) but never omits.
    let mut adversary = RandomOmission::new([ProcessId(0)], 0.0, 13);
    let cfg = RunConfig::corrupted(3, 16, 3).with_max_faulty(1);
    let mut sink = RecordingSink::new(1 << 16);
    let mut stats = ServeStats::default();
    let out = serve_streaming_with_stats(
        &RoundAgreement,
        &mut adversary,
        &ServeConfig::new(cfg, TransportKind::Tcp).with_restart(restart),
        &mut sink,
        |_| {},
        &mut stats,
    )
    .expect("restart session over tcp");

    // Down rounds record no state for the victim — it is simply gone
    // from the kill until (at the earliest) the first respawn attempt.
    for r in restart.kill_round..restart.attempt_round(0) {
        assert!(out
            .history
            .round(Round::new(r))
            .record(ProcessId(0))
            .state_at_start()
            .is_none());
    }
    // The heal round: the first round at which the re-admitted p0 is
    // back in the history. Which attempt succeeds depends on how the
    // snapshot rng damaged the bytes, but the schedule guarantees
    // re-admission no later than the final attempt.
    let heal = (restart.kill_round..=16)
        .find(|&r| {
            out.history
                .round(Round::new(r))
                .record(ProcessId(0))
                .state_at_start()
                .is_some()
        })
        .expect("p0 must be re-admitted");
    assert!(heal <= restart.last_attempt_round());
    assert_eq!(stats.reconnects, 1, "exactly one successful re-admission");
    assert!(
        stats.stale_dropped >= 1,
        "the kill drains p0's in-flight broadcast as stale"
    );
    let events = sink.take();
    assert!(
        events.iter().any(|e| e.kind() == "net_stale_frame"),
        "tcp must narrate the stale frame drop"
    );
    // Re-stabilization within the Thm-3 window bound from the heal.
    let s = window_stabilization(
        &out.history,
        &RateAgreementSpec::new(),
        heal as usize,
        16,
        2,
    )
    .expect("restarted session re-stabilizes");
    assert!(s <= 2, "took {s} rounds, Thm-3 window bound is 2");
    assert!(
        out.final_states[0].is_some(),
        "the restarted node finishes the run"
    );
}

/// Restart sessions are deterministic: byte-identical across reruns on
/// `mem`, and identical modulo `net_*` narration on real sockets. The
/// snapshot-damage rng is seeded from the episode alone, so the whole
/// kill/retry/re-admit trajectory replays exactly.
#[test]
fn restart_sessions_are_deterministic_across_transports() {
    let run = |transport: TransportKind| {
        let restart = ServeRestart {
            p: ProcessId(1),
            kill_round: 3,
            gap: 1,
            staleness: 1,
            fault: SnapshotFault::BitFlip,
            snapshot_seed: 0xbeef,
            retry: Retry {
                attempts: 2,
                backoff_rounds: 3,
            },
        };
        let mut adversary = RandomOmission::new([ProcessId(1)], 0.0, 11);
        let cfg = RunConfig::corrupted(3, 12, 5).with_max_faulty(1);
        let mut sink = RecordingSink::new(1 << 16);
        let mut stats = ServeStats::default();
        let out = serve_streaming_with_stats(
            &RoundAgreement,
            &mut adversary,
            &ServeConfig::new(cfg, transport).with_restart(restart),
            &mut sink,
            |_| {},
            &mut stats,
        )
        .expect("restart session");
        (sink.take(), out.final_states, stats)
    };

    let (mem_a, final_a, stats_a) = run(TransportKind::Mem);
    let (mem_b, final_b, stats_b) = run(TransportKind::Mem);
    assert_eq!(jsonl(&mem_a), jsonl(&mem_b), "mem reruns diverge");
    assert_eq!(final_a, final_b);
    assert_eq!(stats_a, stats_b);
    assert!(
        mem_a.iter().all(|e| !e.kind().starts_with("net_")),
        "mem must emit no net_* events"
    );

    let (tcp_events, tcp_final, tcp_stats) = run(TransportKind::Tcp);
    assert_eq!(without_net(&tcp_events), mem_a);
    assert_eq!(tcp_final, final_a);
    // The ServeStats counters are transport-independent even though the
    // net_* narration is not.
    assert_eq!(tcp_stats, stats_a);
}

/// The partial-synchrony proxy: delay, duplicate and reorder storms are
/// deterministic across reruns and across transports, and their late
/// copies deviate nobody — the run still converges.
#[test]
fn timing_storm_sessions_are_deterministic_across_transports() {
    let run = |transport: TransportKind| {
        let timing = TimingFaults {
            victims: vec![ProcessId(0)],
            phases: vec![
                StormPhase::new(2, 4, StormKind::Delay { rounds: 2 }),
                StormPhase::new(6, 7, StormKind::Duplicate),
                StormPhase::new(9, 10, StormKind::Reorder),
            ],
            seed: 0x7131,
        };
        let cfg = RunConfig::corrupted(3, 14, 9);
        let mut sink = RecordingSink::new(1 << 16);
        let out = serve(
            &RoundAgreement,
            &mut ftss::sync_sim::NoFaults,
            &ServeConfig::new(cfg, transport).with_timing(timing),
            &mut sink,
        )
        .expect("timing session");
        (sink.take(), out.final_states)
    };

    let (mem_a, final_a) = run(TransportKind::Mem);
    let (mem_b, final_b) = run(TransportKind::Mem);
    assert_eq!(jsonl(&mem_a), jsonl(&mem_b), "mem reruns diverge");
    assert_eq!(final_a, final_b);
    let outcome_count = |events: &[Event], want: DeliveryOutcome| {
        events
            .iter()
            .filter(|e| matches!(e, Event::Send { outcome, .. } if *outcome == want))
            .count()
    };
    assert!(
        outcome_count(&mem_a, DeliveryOutcome::Delayed) > 0,
        "the delay/reorder windows must defer some copies"
    );
    assert!(
        outcome_count(&mem_a, DeliveryOutcome::Duplicated) > 0,
        "the duplicate window must echo some copies"
    );
    assert!(final_a.iter().all(Option::is_some));

    let (tcp_events, tcp_final) = run(TransportKind::Tcp);
    assert_eq!(without_net(&tcp_events), mem_a);
    assert_eq!(tcp_final, final_a);
    #[cfg(unix)]
    {
        let (uds_events, uds_final) = run(TransportKind::Uds);
        assert_eq!(without_net(&uds_events), mem_a);
        assert_eq!(uds_final, final_a);
    }
}

/// Restart configuration is validated like everything else.
#[test]
fn restart_rejects_invalid_episodes() {
    let ok = ServeRestart {
        p: ProcessId(1),
        kill_round: 4,
        gap: 2,
        staleness: 2,
        fault: SnapshotFault::Stale,
        snapshot_seed: 0,
        retry: Retry {
            attempts: 2,
            backoff_rounds: 2,
        },
    };
    let attempt = |restart: ServeRestart, faulty: &[ProcessId]| {
        serve(
            &RoundAgreement,
            &mut RandomOmission::new(faulty.iter().copied(), 0.0, 1),
            &ServeConfig::new(
                RunConfig::clean(3, 12).with_max_faulty(2),
                TransportKind::Mem,
            )
            .with_restart(restart),
            &mut ftss::telemetry::NullSink,
        )
        .unwrap_err()
    };
    // Restart outside the declared faulty set is not a legal move.
    assert!(attempt(ok, &[ProcessId(0)]).contains("outside the declared faulty set"));
    // The kill must leave room for a pre-kill snapshot round.
    assert!(attempt(
        ServeRestart {
            kill_round: 1,
            staleness: 1,
            ..ok
        },
        &[ProcessId(1)]
    )
    .contains("restart needs"));
    assert!(
        attempt(ServeRestart { staleness: 4, ..ok }, &[ProcessId(1)]).contains("restart needs")
    );
    // Every scheduled attempt must land inside the horizon.
    assert!(attempt(
        ServeRestart {
            retry: Retry {
                attempts: 20,
                backoff_rounds: 2
            },
            ..ok
        },
        &[ProcessId(1)]
    )
    .contains("past the horizon"));
    // A process cannot both churn and restart.
    let err = serve(
        &RoundAgreement,
        &mut RandomOmission::new([ProcessId(1)], 0.0, 1),
        &ServeConfig::new(
            RunConfig::clean(3, 12).with_max_faulty(2),
            TransportKind::Mem,
        )
        .with_churn(ServeChurn {
            p: ProcessId(1),
            leave_round: 3,
            join_round: 5,
        })
        .with_restart(ok),
        &mut ftss::telemetry::NullSink,
    )
    .unwrap_err();
    assert!(err.contains("churn-scheduled"), "{err}");
}

/// Serve inherits the simulator's configuration validation verbatim.
#[test]
fn serve_rejects_invalid_configs_with_simulator_messages() {
    let err = serve(
        &RoundAgreement,
        &mut ftss::sync_sim::NoFaults,
        &ServeConfig::new(RunConfig::clean(0, 4), TransportKind::Mem),
        &mut ftss::telemetry::NullSink,
    )
    .unwrap_err();
    assert_eq!(err, "n must be at least 1");

    let mut storm = StormAdversary::new([ProcessId(0), ProcessId(1)], [], 1);
    let _ = &mut storm as &mut dyn Adversary;
    let err = serve(
        &RoundAgreement,
        &mut storm,
        &ServeConfig::new(
            RunConfig::clean(4, 4).with_max_faulty(1),
            TransportKind::Mem,
        ),
        &mut ftss::telemetry::NullSink,
    )
    .unwrap_err();
    assert_eq!(err, "adversary declares 2 faulty processes but f = 1");
}
