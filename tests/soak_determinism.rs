//! Soak campaigns are pure functions of `(plan, epochs, seed)`: the
//! JSONL report is byte-identical across reruns and across worker
//! counts, and the shipped plans actually recover after every storm
//! epoch — the acceptance bar for the chaos engine.

use ftss_chaos::{run_soak, SoakBudget, SoakConfig, SoakPlan};

fn config(plan: SoakPlan, jobs: usize) -> SoakConfig {
    SoakConfig {
        plan,
        jobs,
        budget: SoakBudget::default(),
    }
}

#[test]
fn default_plan_report_is_byte_identical_across_jobs_and_reruns() {
    let baseline = run_soak(&config(SoakPlan::default_plan(2, 0), 1)).unwrap();
    assert!(
        baseline.all_recovered(),
        "default plan must recover:\n{}",
        baseline.summary()
    );
    let report = baseline.report();
    assert!(!report.is_empty());
    for jobs in [1, 4] {
        let again = run_soak(&config(SoakPlan::default_plan(2, 0), jobs)).unwrap();
        assert_eq!(
            again.report(),
            report,
            "jobs={jobs} must reproduce the report byte for byte"
        );
    }
}

#[test]
fn default_plan_recovers_after_every_epoch_of_a_full_cycle() {
    // Four epochs exercise the whole storm cycle (partition, omission,
    // silence churn, burst-only) in every synchronous cell.
    let out = run_soak(&config(SoakPlan::default_plan(4, 0), 2)).unwrap();
    assert!(out.all_recovered(), "summary:\n{}", out.summary());
    for cell in &out.cells {
        assert_eq!(cell.epochs.len(), 4, "{} ran all epochs", cell.cell);
        assert_eq!(
            cell.jsonl.matches(r#""type":"recovery_measured""#).count(),
            4,
            "{} verifies recovery per epoch:\n{}",
            cell.cell,
            cell.jsonl
        );
    }
}

#[test]
fn worst_case_plan_recovers_and_differs_from_default() {
    let worst = run_soak(&config(SoakPlan::worst_case(2, 0), 2)).unwrap();
    assert!(worst.all_recovered(), "summary:\n{}", worst.summary());
    let default = run_soak(&config(SoakPlan::default_plan(2, 0), 2)).unwrap();
    assert_ne!(
        worst.report(),
        default.report(),
        "the worst-case plan must actually change the execution"
    );
    // The worst-case detector cells run under the adversary scheduler's
    // inflation window, which the report labels as delay inflation.
    assert!(
        worst.report().contains(r#""kind":"delay-inflation""#),
        "missing inflation storms:\n{}",
        worst.report()
    );
}

#[test]
fn distinct_seeds_produce_distinct_reports() {
    let a = run_soak(&config(SoakPlan::default_plan(1, 0), 1)).unwrap();
    let b = run_soak(&config(SoakPlan::default_plan(1, 1), 1)).unwrap();
    assert_ne!(a.report(), b.report());
}
