//! Cross-crate integration tests: the full stack, end to end.

use ftss::analysis::{measured_stabilization_time, theorem1_demo, theorem2_demo, Archetype};
use ftss::async_sim::{AsyncConfig, AsyncRunner};
use ftss::compiler::Compiled;
use ftss::consensus_async::SsConsensusProcess;
use ftss::core::{
    ftss_check, ftss_check_suffix, Corrupt, CoterieTimeline, CrashSchedule, ProcessId, ProcessSet,
    RateAgreementSpec, Round,
};
use ftss::detectors::{
    eventual_weak_accuracy, strong_completeness_time, BaselineDetectorProcess,
    StrongDetectorProcess, SuspectProbe, WeakOracle,
};
use ftss::protocols::{
    CanonicalProtocol, FloodSet, PhaseKing, RepeatedConsensusSpec, RoundAgreement,
};
use ftss::sync_sim::{CrashOnly, NoFaults, RandomOmission, RunConfig, SyncRunner};
use ftss_rng::StdRng;

// ---------------------------------------------------------------------
// E1-shaped: round agreement stabilizes in exactly ≤ 1 round, at scale.
// ---------------------------------------------------------------------

#[test]
fn round_agreement_stabilization_bound_across_sizes() {
    for n in [2usize, 4, 8, 16, 32] {
        for seed in 0..5u64 {
            let out = SyncRunner::new(RoundAgreement)
                .run(
                    &mut NoFaults,
                    &RunConfig::corrupted(n, 8, seed * 31 + n as u64),
                )
                .unwrap();
            let m = measured_stabilization_time(&out.history, &RateAgreementSpec::new()).unwrap();
            assert!(
                m.stabilization_rounds.unwrap() <= 1,
                "n={n} seed={seed}: {m:?}"
            );
        }
    }
}

#[test]
fn round_agreement_full_def24_check_with_faults() {
    // Exhaustive Definition 2.4 over all decompositions, with a faulty
    // process omitting at random — the strongest correctness statement we
    // can make mechanically for Theorem 3.
    for seed in 0..6u64 {
        let mut adv = RandomOmission::new([ProcessId(0)], 0.5, seed);
        let out = SyncRunner::new(RoundAgreement)
            .run(&mut adv, &RunConfig::corrupted(4, 14, seed ^ 0xaa))
            .unwrap();
        let report = ftss_check(&out.history, &RateAgreementSpec::new(), 1);
        assert!(report.is_satisfied(), "seed {seed}: {report}");
        assert!(report.obligations_checked > 50, "check actually ran");
    }
}

// ---------------------------------------------------------------------
// E2-shaped: the compiler's stabilization bound for two different Πs.
// ---------------------------------------------------------------------

#[test]
fn compiled_floodset_stabilization_within_bound() {
    let f = 1;
    let fr = f + 1;
    let bound = 2 * fr + 2; // final_round + suspect recovery + round agreement
    for seed in 0..10u64 {
        let out = SyncRunner::new(Compiled::new(FloodSet::new(f, vec![5, 9, 2, 7])))
            .run(&mut NoFaults, &RunConfig::corrupted(4, 8 * fr, seed))
            .unwrap();
        let m = measured_stabilization_time(&out.history, &RepeatedConsensusSpec::agreement_only())
            .unwrap();
        let s = m.stabilization_rounds.expect("stabilizes");
        assert!(s <= bound, "seed {seed}: measured {s} > bound {bound}");
    }
}

#[test]
fn compiled_phase_king_with_crash_and_corruption() {
    let f = 1;
    let pk = PhaseKing::new(f, vec![true, false, true, false, true]);
    let fr = pk.final_round() as usize;
    for seed in 0..5u64 {
        let mut cs = CrashSchedule::none();
        cs.set(ProcessId(4), Round::new(3));
        let out = SyncRunner::new(Compiled::new(pk.clone()))
            .run(
                &mut CrashOnly::new(cs),
                &RunConfig::corrupted(5, 8 * fr, seed),
            )
            .unwrap();
        let spec = RepeatedConsensusSpec::agreement_only();
        if let Err(v) = ftss_check_suffix(&out.history, &spec, 2 * fr + 2) {
            panic!("seed {seed}: {v}");
        }
    }
}

// ---------------------------------------------------------------------
// E3/E4-shaped: the impossibility scenarios.
// ---------------------------------------------------------------------

#[test]
fn theorem1_and_2_scenarios_hold_under_sweep() {
    for r in [1usize, 4, 8] {
        for a in Archetype::all() {
            assert!(theorem1_demo(a, r, 5).refuted(), "{} r={r}", a.name());
        }
    }
    for rounds in [4usize, 16] {
        assert!(theorem2_demo(Archetype::HaltOnDisagreement, rounds).refuted());
        assert!(theorem2_demo(Archetype::EagerHalt, rounds).refuted());
    }
}

// ---------------------------------------------------------------------
// E5-shaped: detector stack — paper protocol vs baseline.
// ---------------------------------------------------------------------

#[test]
fn figure4_converges_where_baseline_fails() {
    let n = 4;
    let crashes = vec![(ProcessId(3), 500u64)];
    // A *quiet* ◇W (no erroneous suspicions, converged from the start):
    // the change-only baseline then has nothing that ever re-dirties the
    // poisoned entries, which is exactly the case where its implicit
    // initialization assumption bites. (With noisy ◇W the baseline can get
    // lucky: a spurious detect re-dirties the entry and spreads the mark.)
    let oracle = WeakOracle::new(n, crashes.clone(), 0, 3, 0.0);
    let crashed = ProcessSet::from_iter_n(n, [ProcessId(3)]);
    let correct = crashed.complement();

    // The adversarial systemic failure: every process believes every other
    // process is dead, with an enormous version counter, while each
    // process's own self-entry starts at 0 — the self-increments alone can
    // never outbid the corruption within the horizon. (Definition: the
    // initial state is *arbitrary*, so the worst one counts.)
    let poison = |num: &mut Vec<u64>, state: &mut Vec<ftss::detectors::LifeState>, me: usize| {
        for s in 0..num.len() {
            if s == me {
                num[s] = 0;
                state[s] = ftss::detectors::LifeState::Alive;
            } else {
                num[s] = 1_000_000_000;
                state[s] = ftss::detectors::LifeState::Dead;
            }
        }
    };

    // Figure 4 from the poisoned state: both ◇S properties settle anyway.
    let mut procs: Vec<StrongDetectorProcess> = (0..n)
        .map(|i| StrongDetectorProcess::new(ProcessId(i), oracle.clone(), 20))
        .collect();
    for (i, p) in procs.iter_mut().enumerate() {
        poison(&mut p.num, &mut p.state, i);
    }
    let mut cfg = AsyncConfig::tame(3);
    for &(p, t) in &crashes {
        cfg = cfg.with_crash(p, t);
    }
    let mut runner = AsyncRunner::new(procs, cfg.clone()).unwrap();
    let mut probes = Vec::new();
    runner.run_probed(40_000, 200, |t, ps| {
        probes.push(SuspectProbe::sample(t, ps))
    });
    assert!(
        strong_completeness_time(&probes, &crashed, &correct).is_some(),
        "Fig 4 must reach strong completeness from corruption"
    );
    assert!(
        eventual_weak_accuracy(&probes, &correct).is_some(),
        "Fig 4 must reach eventual weak accuracy from corruption"
    );

    // Baseline with the same poisoning *plus clean dirty flags*: the
    // high-water marks are never re-gossiped, the victims can never outbid
    // them, and eventual weak accuracy is violated forever.
    let mut procs: Vec<BaselineDetectorProcess> = (0..n)
        .map(|i| BaselineDetectorProcess::new(ProcessId(i), oracle.clone(), 20))
        .collect();
    for (i, p) in procs.iter_mut().enumerate() {
        poison(&mut p.num, &mut p.state, i);
        for d in &mut p.dirty {
            *d = false;
        }
    }
    let mut runner = AsyncRunner::new(procs, cfg).unwrap();
    let mut probes = Vec::new();
    runner.run_probed(40_000, 200, |t, ps| {
        probes.push(SuspectProbe::sample(t, ps))
    });
    let acc = eventual_weak_accuracy(&probes, &correct);
    assert!(
        acc.is_none(),
        "baseline should violate accuracy from this corruption (acc={acc:?})"
    );
}

// ---------------------------------------------------------------------
// E6-shaped: the full async consensus stack.
// ---------------------------------------------------------------------

#[test]
fn stabilizing_consensus_full_stack_recovery() {
    let inputs = vec![10u64, 20, 30];
    let n = inputs.len();
    let oracle = WeakOracle::new(n, vec![], 300, 9, 0.2);
    let mut procs: Vec<SsConsensusProcess> = (0..n)
        .map(|i| SsConsensusProcess::new(ProcessId(i), inputs.clone(), oracle.clone(), 25, 40))
        .collect();
    let mut rng = StdRng::seed_from_u64(1234);
    for p in &mut procs {
        p.corrupt(&mut rng);
    }
    let corrupted_max = procs.iter().map(|p| p.inst).max().unwrap();
    let mut runner = AsyncRunner::new(procs, AsyncConfig::turbulent(9, 50, 300)).unwrap();
    runner.run_until(150_000);
    // Progress past the corrupted epoch, with validity on fresh instances.
    for p in runner.processes() {
        let (i, v) = p.last_decision().expect("decided");
        assert!(i >= corrupted_max.saturating_sub(1), "no progress: {i}");
        if i > corrupted_max {
            assert!(p.valid_values(i).contains(&v), "instance {i} decided {v}");
        }
    }
}

// ---------------------------------------------------------------------
// Cross-cutting: coterie timelines recorded by the simulator make sense.
// ---------------------------------------------------------------------

#[test]
fn coterie_timeline_tracks_crash_and_recovery() {
    let mut cs = CrashSchedule::none();
    cs.set(ProcessId(2), Round::new(4));
    let out = SyncRunner::new(RoundAgreement)
        .run(&mut CrashOnly::new(cs), &RunConfig::clean(3, 8))
        .unwrap();
    let tl = CoterieTimeline::compute(&out.history);
    // Before the crash everyone is in the coterie.
    assert_eq!(*tl.at_prefix(1), ProcessSet::full(3));
    // The windows partition the run.
    let ws = tl.stable_windows();
    let total: usize = ws.iter().map(|w| w.duration()).sum();
    assert_eq!(total, 8);
    // The final window's coterie contains the two survivors.
    let last = tl.final_window().unwrap();
    assert!(last.coterie.contains(ProcessId(0)));
    assert!(last.coterie.contains(ProcessId(1)));
}

#[test]
fn compiled_eig_stabilizes_and_recovers_min() {
    // EIG through the compiler: the information tree is monotone state,
    // so the iteration reset is what clears corrupted entries (the E7
    // finding, on a third protocol).
    use ftss::protocols::Eig;
    for seed in 0..6u64 {
        let out = SyncRunner::new(Compiled::new(Eig::new(1, vec![7, 2, 5])))
            .run(&mut NoFaults, &RunConfig::corrupted(3, 16, seed))
            .unwrap();
        let spec = RepeatedConsensusSpec::agreement_only();
        if let Err(v) = ftss_check_suffix(&out.history, &spec, 6) {
            panic!("seed {seed}: {v}");
        }
        for s in out.final_states.iter().flatten() {
            let (_, v) = s.last_decision.unwrap();
            assert_eq!(v, 2, "post-stabilization iterations decide min");
        }
    }
}

#[test]
fn token_ring_contrast_ss_only() {
    // Dijkstra's ring ss-solves mutual exclusion but a single crash halts
    // it — the motivating contrast for unifying the failure models.
    use ftss::protocols::{token_ring::token_holders, TokenRing};
    let n = 5;
    let ring = TokenRing::new(n);
    let out = SyncRunner::new(ring)
        .run(&mut NoFaults, &RunConfig::corrupted(n, 80, 11))
        .unwrap();
    let vals: Vec<u64> = out
        .final_states
        .iter()
        .map(|s| s.as_ref().unwrap().value)
        .collect();
    assert_eq!(token_holders(&ring, &vals), 1, "stabilized to one token");
}

#[test]
fn uniformity_spec_confirms_theorem2_mechanically() {
    // Drive the uniform archetypes through the permanently-partitioned
    // history and evaluate Assumption 2 with core's UniformitySpec on the
    // recorded history — the formal check, not hand-rolled flags.
    use ftss::analysis::HaltOnDisagreement;
    use ftss::core::UniformitySpec;
    use ftss::sync_sim::{OmissionSide, ScriptedOmission};

    let rounds = 8u64;
    let mut adv = ScriptedOmission::new();
    for r in 1..=rounds {
        adv.drop_at(r, ProcessId(0), ProcessId(1), OmissionSide::Sender);
        adv.drop_at(r, ProcessId(1), ProcessId(0), OmissionSide::Receiver);
    }
    let out = SyncRunner::new(HaltOnDisagreement)
        .run(&mut adv, &RunConfig::corrupted(2, rounds as usize, 7))
        .unwrap();
    let faulty = ProcessSet::from_iter_n(2, [ProcessId(0)]);
    // p0 never hears a disagreeing counter, so it never halts, and its
    // corrupted counter (overwhelmingly) differs from p1's: Assumption 2
    // must be violated on the recorded history.
    let err =
        ftss::core::Problem::<_, _>::check(&UniformitySpec::new(), out.history.as_slice(), &faulty)
            .unwrap_err();
    assert_eq!(err.rule, "uniformity");
}

#[test]
fn def24_exhaustive_across_partition_heal() {
    // The multi-window case of Definition 2.4: a partition keeps the
    // minority out of the coterie; the heal changes the coterie (a
    // de-stabilizing event); the exhaustive checker must find Assumption 1
    // satisfied on every obligation of every stable window.
    use ftss::sync_sim::GroupPartition;
    for seed in 0..8u64 {
        let mut adv = GroupPartition::new([ProcessId(0)], 1, 6);
        let out = SyncRunner::new(RoundAgreement)
            .run(&mut adv, &RunConfig::corrupted(4, 16, seed))
            .unwrap();
        let tl = CoterieTimeline::compute(&out.history);
        assert!(
            tl.stable_windows().len() >= 2,
            "seed {seed}: the heal must change the coterie"
        );
        let report = ftss_check(&out.history, &RateAgreementSpec::new(), 1);
        assert!(report.is_satisfied(), "seed {seed}: {report}");
    }
}

#[test]
fn compiled_broadcast_sigma_plus_under_omissions() {
    use ftss::protocols::ReliableBroadcast;
    for seed in 0..5u64 {
        let rb = ReliableBroadcast::new(ProcessId(0), 77, 1);
        let fr = 2usize;
        let mut adv = RandomOmission::new([ProcessId(3)], 0.4, seed);
        let out = SyncRunner::new(Compiled::new(rb))
            .run(&mut adv, &RunConfig::corrupted(4, 10 * fr, seed))
            .unwrap();
        let spec = RepeatedConsensusSpec::agreement_only();
        if let Err(v) = ftss_check_suffix(&out.history, &spec, 2 * fr + 2) {
            panic!("seed {seed}: {v}");
        }
        // Post-stabilization the source's value is re-delivered each
        // iteration — at every *correct* process. The declared omitter may
        // miss the flood in both rounds of an iteration (general omission
        // drops its incoming copies too) and legitimately deliver ⊥.
        let faulty = out.history.faulty();
        for (i, s) in out.final_states.iter().enumerate() {
            let Some(s) = s else { continue };
            if faulty.contains(ProcessId(i)) {
                continue;
            }
            let (_, v) = s.last_decision.unwrap();
            assert_eq!(v, Some(77), "seed {seed}: p{i}");
        }
    }
}

#[test]
fn round_agreement_scales_to_n64_with_exhaustive_check() {
    let out = SyncRunner::new(RoundAgreement)
        .run(&mut NoFaults, &RunConfig::corrupted(64, 10, 99))
        .unwrap();
    let report = ftss_check(&out.history, &RateAgreementSpec::new(), 1);
    assert!(report.is_satisfied(), "{report}");
    assert!(report.obligations_checked >= 45);
}

#[test]
fn mid_run_corruption_restabilizes_compiled_protocol() {
    // The paper's "following the final systemic failure": corrupt Π⁺ again
    // mid-run; Σ⁺ must hold on the suffix after the final failure.
    use ftss::sync_sim::CorruptionSchedule;
    for seed in 0..5u64 {
        let schedule = CorruptionSchedule::none().at(9, seed ^ 0x55);
        let cfg = RunConfig::corrupted(4, 26, seed).with_mid_run_corruption(schedule);
        let out = SyncRunner::new(Compiled::new(FloodSet::new(1, vec![9, 2, 6, 4])))
            .run(&mut NoFaults, &cfg)
            .unwrap();
        // Check Σ⁺ on the suffix after the final systemic failure plus the
        // stabilization bound.
        let spec = RepeatedConsensusSpec::agreement_only();
        let stab_end = 9 + 2 * 2 + 2; // failure round + 2·final_round + 2
        let suffix = out.history.slice(stab_end, out.history.len());
        let faulty = out.history.faulty();
        assert!(
            ftss::core::Problem::<_, _>::check(&spec, suffix, &faulty).is_ok(),
            "seed {seed}"
        );
    }
}

#[test]
fn ss_check_definition22_on_token_ring() {
    // Definition 2.2 end-to-end: Dijkstra's ring ss-solves mutual
    // exclusion — Σ(H', ∅) on the r-suffix, with Σ = "exactly one token
    // per round", checked through the standard Problem machinery.
    use ftss::protocols::token_ring::{token_holders, TokenRing, TokenRingState};

    struct MutexSpec(TokenRing);
    impl ftss::core::Problem<TokenRingState, u64> for MutexSpec {
        fn name(&self) -> &str {
            "mutual-exclusion"
        }
        fn check(
            &self,
            h: ftss::core::HistorySlice<'_, TokenRingState, u64>,
            _faulty: &ProcessSet,
        ) -> Result<(), ftss::core::Violation> {
            for i in 0..h.len() {
                let vals: Vec<u64> = h
                    .round(i)
                    .records()
                    .map(|r| r.state_at_start().unwrap().value)
                    .collect();
                let holders = token_holders(&self.0, &vals);
                if holders != 1 {
                    return Err(ftss::core::Violation::new(
                        "mutual-exclusion",
                        format!("{holders} token holders"),
                    )
                    .at_round(i));
                }
            }
            Ok(())
        }
    }

    for seed in 0..10u64 {
        let n = 5;
        let ring = TokenRing::new(n);
        let stab = 2 * n * (n + 1);
        let out = SyncRunner::new(ring)
            .run(&mut NoFaults, &RunConfig::corrupted(n, stab + 12, seed))
            .unwrap();
        assert!(
            ftss::core::ss_check(&out.history, &MutexSpec(ring), stab).is_ok(),
            "seed {seed}: ss-solves violated"
        );
    }
}
